(* Lossy-channel robustness: fault injection, retry/backoff/dedup in
   the integrity-check protocol, and regression tests for the
   interception, wiring-cleanup and poll-xid bugfixes.  Everything is
   seeded — failures reproduce exactly. *)

let check = Alcotest.check

let p = Workload.Topogen.default_params

(* ---- Faults planning ---- *)

let test_faults_plan () =
  let rng = Support.Rng.create 11 in
  check Alcotest.bool "none is none" true (Netsim.Faults.is_none Netsim.Faults.none);
  check Alcotest.bool "none delivers one copy" true
    (Netsim.Faults.plan Netsim.Faults.none rng = [ 0.0 ]);
  check Alcotest.bool "certain loss drops" true
    (Netsim.Faults.plan (Netsim.Faults.loss 1.0) rng = []);
  let dup = Netsim.Faults.make ~dup_prob:1.0 () in
  check Alcotest.int "certain duplication yields two copies" 2
    (List.length (Netsim.Faults.plan dup rng));
  let delayed = Netsim.Faults.make ~extra_delay:0.5 ~jitter:0.1 () in
  List.iter
    (fun d ->
      check Alcotest.bool "delay within [extra, extra+jitter]" true
        (d >= 0.5 && d <= 0.6 +. 1e-9))
    (Netsim.Faults.plan delayed rng)

let test_faults_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check Alcotest.bool "loss_prob > 1 rejected" true
    (raises (fun () -> Netsim.Faults.make ~loss_prob:1.5 ()));
  check Alcotest.bool "negative jitter rejected" true
    (raises (fun () -> Netsim.Faults.make ~jitter:(-0.1) ()));
  check Alcotest.bool "negative extra_delay rejected" true
    (raises (fun () -> Netsim.Faults.make ~extra_delay:(-1.0) ()));
  check Alcotest.bool "negative dup_prob rejected" true
    (raises (fun () -> Netsim.Faults.make ~dup_prob:(-0.5) ()))

(* ---- Net: faults apply to every controller message ---- *)

let test_net_ctrl_faults_all_messages () =
  let topo = Workload.Topogen.linear p 2 in
  let net = Netsim.Net.create ~seed:3 topo in
  let conn =
    Netsim.Net.register_controller net ~name:"lossy" ~delay:1e-3
      ~faults:(Netsim.Faults.loss 1.0) ()
  in
  let sw = List.hd (Netsim.Topology.switches topo) in
  Netsim.Net.attach net conn ~sw ~monitor:false;
  let spec =
    Ofproto.Flow_entry.make_spec ~priority:5 Ofproto.Match_.any
      [ Ofproto.Action.Output 1 ]
  in
  (* A Flow_mod is not a Monitor event: under the legacy loss_prob it
     was delivered reliably; under faults it must be droppable. *)
  Netsim.Net.send net conn ~sw (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec));
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:0.1);
  check Alcotest.int "flow never installed" 0
    (List.length (Ofproto.Flow_table.specs (Netsim.Net.table net ~sw)));
  check Alcotest.bool "ctrl loss counted" true
    ((Netsim.Net.stats net).ctrl_faults_lost > 0)

let test_net_ctrl_faults_duplicate () =
  let topo = Workload.Topogen.linear p 2 in
  let net = Netsim.Net.create ~seed:3 topo in
  let conn =
    Netsim.Net.register_controller net ~name:"dup" ~delay:1e-3
      ~faults:(Netsim.Faults.make ~dup_prob:1.0 ()) ()
  in
  let sw = List.hd (Netsim.Topology.switches topo) in
  Netsim.Net.attach net conn ~sw ~monitor:false;
  let replies = ref 0 in
  Netsim.Net.set_handler conn (fun _ -> incr replies);
  Netsim.Net.send net conn ~sw (Ofproto.Message.Echo_request { xid = 1 });
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:0.1);
  (* Request duplicated (2 arrivals), each reply duplicated again. *)
  check Alcotest.int "echo reply quadrupled" 4 !replies;
  check Alcotest.bool "duplication counted" true
    ((Netsim.Net.stats net).ctrl_faults_duplicated > 0)

let test_net_link_faults () =
  let topo = Workload.Topogen.linear p 2 in
  let net = Netsim.Net.create ~seed:3 topo in
  Netsim.Net.set_default_link_faults net (Netsim.Faults.loss 1.0);
  let header = Hspace.Header.udp ~src_ip:1 ~dst_ip:2 ~src_port:1 ~dst_port:2 in
  Netsim.Net.host_send net ~host:0 (Netsim.Packet.make ~header "x");
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:0.1);
  check Alcotest.int "nothing delivered" 0 (Netsim.Net.stats net).delivered;
  check Alcotest.bool "link loss counted" true
    ((Netsim.Net.stats net).link_faults_lost > 0)

(* ---- Scenario helpers ---- *)

let spec_with topo f = f (Workload.Scenario.default_spec topo)

let isolation_outcome s =
  Workload.Scenario.query_and_wait s ~host:0
    (Rvaas.Query.make Rvaas.Query.Isolation)
    ~timeout:2.0

(* ---- Service: retransmission, dedup, degraded answers ---- *)

(* attempts = 2 with a backoff far below the auth RTT forces a
   retransmission of every probe at zero loss: each client replies
   twice, and the service must count each challenge once. *)
let test_service_retransmit_dedup () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with auth_retry = { Rvaas.Service.attempts = 2; base_delay = 1e-4 } }))
  in
  match isolation_outcome s with
  | None -> Alcotest.fail "no answer"
  | Some o ->
    let a = o.Rvaas.Client_agent.answer in
    let svc = Rvaas.Service.stats s.service in
    check Alcotest.bool "not degraded" false a.Rvaas.Query.degraded;
    check Alcotest.int "full reply quorum" a.total_auth_requests a.auth_replies;
    check Alcotest.int "every probe retransmitted once" a.total_auth_requests
      svc.auth_retransmissions;
    check Alcotest.int "attempts carried in the answer"
      (2 * a.total_auth_requests) a.auth_attempts;
    (* The second wave of replies lands as duplicates (or post-finalize
       rejects) — never as extra accepted replies. *)
    check Alcotest.bool "second replies not double-counted" true
      (svc.auth_replies_duplicate + svc.auth_replies_rejected >= 1);
    check Alcotest.int "accepted = probes" a.total_auth_requests
      svc.auth_replies_accepted

(* Message duplication on the control channel must not inflate the
   reply count either. *)
let test_service_duplicate_reply_dedup () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with rvaas_faults = Netsim.Faults.make ~dup_prob:1.0 () }))
  in
  match isolation_outcome s with
  | None -> Alcotest.fail "no answer"
  | Some o ->
    let a = o.Rvaas.Client_agent.answer in
    let svc = Rvaas.Service.stats s.service in
    check Alcotest.bool "not degraded" false a.Rvaas.Query.degraded;
    check Alcotest.bool "replies never exceed probes" true
      (a.auth_replies <= a.total_auth_requests);
    check Alcotest.bool "duplicates tallied" true
      (svc.auth_replies_duplicate + svc.auth_replies_rejected >= 1)

(* Regression (duplicate request replay): a duplicated {e request}
   packet used to re-open the query — the replay's pending replaced the
   original in [open_queries], the original finalized and removed the
   replay's entry, and the replay then answered a second time against
   an empty auth round (wrong verdict, duplicated signed answers).  A
   nonce already in flight must be treated as duplicate delivery:
   counted, never reopened, exactly one answer. *)
let test_service_duplicate_request_replay () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with rvaas_faults = Netsim.Faults.make ~dup_prob:1.0 () }))
  in
  match isolation_outcome s with
  | None -> Alcotest.fail "no answer"
  | Some o ->
    let a = o.Rvaas.Client_agent.answer in
    let svc = Rvaas.Service.stats s.service in
    (* Let any straggler (a second finalize, were one pending) land. *)
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.5);
    check Alcotest.bool "not degraded" false a.Rvaas.Query.degraded;
    check Alcotest.bool "replayed request observed" true
      (svc.queries_duplicate >= 1);
    check Alcotest.int "exactly one signed answer" 1 svc.answers_sent;
    check Alcotest.int "no orphaned open query" 0
      (Rvaas.Service.open_query_count s.service);
    check Alcotest.int "no orphaned pending state" 0
      (Rvaas.Service.pending_probe_count s.service)

(* A muted (uncooperative) client leaves the quorum incomplete: the
   answer must say so instead of looking clean. *)
let test_service_degraded_flag () =
  let topo = Workload.Topogen.linear p 4 in
  let s = Workload.Scenario.build (spec_with topo (fun d -> d)) in
  (* Host 2 belongs to client 0 (round-robin over 2 clients). *)
  Rvaas.Client_agent.set_mute (Workload.Scenario.agent s ~host:2) true;
  match isolation_outcome s with
  | None -> Alcotest.fail "no answer"
  | Some o ->
    let a = o.Rvaas.Client_agent.answer in
    check Alcotest.bool "degraded flagged" true a.Rvaas.Query.degraded;
    check Alcotest.bool "incomplete quorum" true
      (a.auth_replies < a.total_auth_requests)

(* End-to-end: at 15% uniform control loss the full retry stack still
   resolves the query to the lossless verdict (seeded, deterministic). *)
let test_retry_stack_recovers_under_loss () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           {
             d with
             seed = 7;
             rvaas_faults = Netsim.Faults.loss 0.15;
             auth_retry = { Rvaas.Service.attempts = 4; base_delay = 0.005 };
             poll_retry = Some 0.05;
             agent_resend = Some 0.3;
           }))
  in
  Workload.Scenario.run s ~until:0.5;
  check Alcotest.bool "faults actually injected" true
    ((Netsim.Net.stats s.net).ctrl_faults_lost > 0);
  match isolation_outcome s with
  | None -> Alcotest.fail "no answer despite retries"
  | Some o ->
    let a = o.Rvaas.Client_agent.answer in
    check Alcotest.bool "not degraded" false a.Rvaas.Query.degraded;
    check Alcotest.int "full reply quorum" a.total_auth_requests a.auth_replies

(* A lost intercept Add_flow must be repaired from the monitored
   snapshot, not stay lost forever. *)
let test_service_intercept_repair () =
  let topo = Workload.Topogen.linear p 4 in
  let s = Workload.Scenario.build (spec_with topo (fun d -> d)) in
  let sw = List.hd (Netsim.Topology.switches topo) in
  let intercepts flows =
    List.filter
      (fun (e : Ofproto.Flow_entry.spec) -> e.cookie = Rvaas.Wire.intercept_cookie)
      flows
  in
  check Alcotest.int "intercepts installed" 2
    (List.length (intercepts (Workload.Scenario.actual_flows s sw)));
  (* Rip them out behind the service's back. *)
  let chaos = Netsim.Net.register_controller s.net ~name:"chaos" ~delay:1e-3 () in
  Netsim.Net.attach s.net chaos ~sw ~monitor:false;
  Netsim.Net.send s.net chaos ~sw
    (Ofproto.Message.Flow_mod (Ofproto.Message.Delete_by_cookie Rvaas.Wire.intercept_cookie));
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  check Alcotest.int "intercepts repaired" 2
    (List.length (intercepts (Workload.Scenario.actual_flows s sw)));
  check Alcotest.bool "repairs counted" true
    ((Rvaas.Service.stats s.service).intercepts_reinstalled >= 2)

(* ---- Monitor: poll retry and distinct xids ---- *)

let test_monitor_poll_retry () =
  let topo = Workload.Topogen.linear p 3 in
  let net = Netsim.Net.create ~seed:5 topo in
  let monitor =
    Netsim.Net.register_controller net ~name:"installer" ~delay:1e-3 () |> fun installer ->
    let sw = List.hd (Netsim.Topology.switches topo) in
    Netsim.Net.attach net installer ~sw ~monitor:false;
    Netsim.Net.send net installer ~sw
      (Ofproto.Message.Flow_mod
         (Ofproto.Message.Add_flow
            (Ofproto.Flow_entry.make_spec ~priority:7 Ofproto.Match_.any
               [ Ofproto.Action.Output 1 ])));
    Rvaas.Monitor.create net ~conn_delay:1e-3
      ~faults:(Netsim.Faults.loss 0.5)
      ~poll_retry:0.05 ~polling:(Rvaas.Monitor.Periodic 0.1) ()
  in
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:1.0);
  check Alcotest.bool "unanswered polls were retried" true
    (Rvaas.Monitor.poll_retries monitor > 0);
  (* Despite 50% loss the retried polls converge the snapshot. *)
  let sw = List.hd (Netsim.Topology.switches topo) in
  check Alcotest.int "snapshot converged" 1
    (List.length (Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot monitor) ~sw));
  (* Deadline hits also clear exhausted requests from the tracker. *)
  Rvaas.Monitor.stop_polling monitor;
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:2.0);
  check Alcotest.int "tracker drained" 0 (Rvaas.Monitor.outstanding_polls monitor)

(* Regression (poll xids): the flow and meter stats requests of one
   sweep must carry distinct xids — with a shared xid the xid-keyed
   tracker collapses to one entry per switch and a retry of one request
   would be cancelled by the reply to the other. *)
let test_monitor_poll_xids_distinct () =
  let topo = Workload.Topogen.linear p 3 in
  let net = Netsim.Net.create ~seed:5 topo in
  let monitor =
    Rvaas.Monitor.create net ~conn_delay:0.01
      ~polling:(Rvaas.Monitor.Periodic 0.5) ()
  in
  let n = List.length (Netsim.Topology.switches topo) in
  (* Sample mid-flight: requests issued at 0.5, replies land at 0.52. *)
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:0.505);
  check Alcotest.int "one tracked entry per in-flight request" (2 * n)
    (Rvaas.Monitor.outstanding_polls monitor);
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:0.6);
  check Alcotest.int "all answered" 0 (Rvaas.Monitor.outstanding_polls monitor)

(* ---- Client agent: answer-wait timeout ---- *)

let test_agent_resend_once () =
  let topo = Workload.Topogen.linear p 2 in
  let net = Netsim.Net.create ~seed:9 topo in
  (* No service anywhere: the answer never comes. *)
  let kp = Cryptosim.Keys.generate (Support.Rng.create 1) ~owner:"svc" in
  let agent =
    Rvaas.Client_agent.create net ~host:0 ~client:0 ~ip:42
      ~key:(Cryptosim.Hmac.key_of_string "k")
      ~service_public:(Cryptosim.Keys.public kp) ~resend_timeout:0.1 ()
  in
  ignore (Rvaas.Client_agent.send_query agent (Rvaas.Query.make Rvaas.Query.Isolation));
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:1.0);
  check Alcotest.int "re-requested exactly once" 1 (Rvaas.Client_agent.resends agent);
  check Alcotest.int "query still outstanding" 1 (Rvaas.Client_agent.outstanding agent);
  check Alcotest.bool "non-positive timeout rejected" true
    (match
       Rvaas.Client_agent.create net ~host:0 ~client:0 ~ip:42
         ~key:(Cryptosim.Hmac.key_of_string "k")
         ~service_public:(Cryptosim.Keys.public kp) ~resend_timeout:0.0 ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The client resend recovers a lost answer end-to-end. *)
let test_agent_resend_recovers_answer () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           {
             d with
             seed = 3;
             rvaas_faults = Netsim.Faults.loss 0.1;
             auth_retry = { Rvaas.Service.attempts = 4; base_delay = 0.005 };
             poll_retry = Some 0.05;
             agent_resend = Some 0.25;
           }))
  in
  Workload.Scenario.run s ~until:0.5;
  (* Issue queries until one needs the resend path, then insist it
     still completes.  Seeded: the trace is reproducible. *)
  let resent = ref false in
  let answered = ref 0 in
  for _ = 1 to 12 do
    let before = Rvaas.Client_agent.resends (Workload.Scenario.agent s ~host:0) in
    (match isolation_outcome s with
    | Some _ -> incr answered
    | None -> ());
    if Rvaas.Client_agent.resends (Workload.Scenario.agent s ~host:0) > before then
      resent := true
  done;
  check Alcotest.bool "at least one resend exercised" true !resent;
  check Alcotest.int "every query answered" 12 !answered

(* ---- Regression (interception scope): client-to-client UDP on a
   magic port is forwarded, not hijacked ---- *)

let test_magic_port_traffic_forwarded () =
  let topo = Workload.Topogen.linear p 4 in
  let s = Workload.Scenario.build (spec_with topo (fun d -> d)) in
  (* Hosts 0 and 2 both belong to client 0: isolation permits them to
     talk.  The payload is plain UDP that merely reuses the request
     port number — only dst_ip = service_ip traffic is the service's. *)
  let dst = Option.get (Sdnctl.Addressing.host s.addressing ~host:2) in
  let src = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
  let received = ref [] in
  Netsim.Net.set_host_receiver s.net ~host:2 (fun packet ->
      received := packet.Netsim.Packet.payload :: !received);
  let rejected0 = (Rvaas.Service.stats s.service).queries_rejected in
  List.iter
    (fun port ->
      let header =
        Hspace.Header.udp ~src_ip:src.Sdnctl.Addressing.ip
          ~dst_ip:dst.Sdnctl.Addressing.ip ~src_port:5555 ~dst_port:port
      in
      Netsim.Net.host_send s.net ~host:0 (Netsim.Packet.make ~header "hello"))
    [ Rvaas.Wire.request_port; Rvaas.Wire.auth_reply_port ];
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1);
  check Alcotest.int "both packets delivered to the peer host" 2
    (List.length !received);
  check Alcotest.int "service never saw them" rejected0
    (Rvaas.Service.stats s.service).queries_rejected

(* ---- Regression (wiring verification): intercept cleanup and
   reentrancy ---- *)

let test_wiring_cleanup_and_reentrancy () =
  let topo = Workload.Topogen.linear p 4 in
  let s = Workload.Scenario.build (spec_with topo (fun d -> d)) in
  let lldp_entries sw =
    List.filter
      (fun (e : Ofproto.Flow_entry.spec) -> e.cookie = Rvaas.Wire.lldp_cookie)
      (Workload.Scenario.actual_flows s sw)
  in
  let switches = Netsim.Topology.switches topo in
  let completed = ref false in
  Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.1 ~on_complete:(fun report ->
      completed := true;
      check Alcotest.int "all probes confirmed" report.Rvaas.Monitor.probes_sent
        report.Rvaas.Monitor.confirmed);
  (* Overlapping runs would clobber each other's probe tables. *)
  Alcotest.check_raises "concurrent run rejected"
    (Invalid_argument "Monitor.verify_wiring: a verification run is already in progress")
    (fun () ->
      Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.1 ~on_complete:ignore);
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Workload.Scenario.run s ~until:(now () +. 0.05);
  check Alcotest.bool "probe intercepts live during the run" true
    (List.exists (fun sw -> lldp_entries sw <> []) switches);
  Workload.Scenario.run s ~until:(now () +. 0.2);
  check Alcotest.bool "run completed" true !completed;
  (* Regression: the entries used to leak, one set per run. *)
  List.iter
    (fun sw -> check Alcotest.int "probe intercepts removed" 0
        (List.length (lldp_entries sw)))
    switches;
  (* The service's own intercepts must survive the cookie-scoped
     cleanup untouched. *)
  List.iter
    (fun sw ->
      check Alcotest.int "service intercepts intact" 2
        (List.length
           (List.filter
              (fun (e : Ofproto.Flow_entry.spec) ->
                e.cookie = Rvaas.Wire.intercept_cookie)
              (Workload.Scenario.actual_flows s sw))))
    switches;
  (* A fresh run is accepted once the previous one finished. *)
  Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.05 ~on_complete:ignore;
  Workload.Scenario.run s ~until:(now () +. 0.2)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "plan" `Quick test_faults_plan;
          Alcotest.test_case "validation" `Quick test_faults_validation;
        ] );
      ( "net",
        [
          Alcotest.test_case "ctrl faults hit all messages" `Quick
            test_net_ctrl_faults_all_messages;
          Alcotest.test_case "ctrl duplication" `Quick test_net_ctrl_faults_duplicate;
          Alcotest.test_case "link faults" `Quick test_net_link_faults;
        ] );
      ( "service",
        [
          Alcotest.test_case "retransmit + dedup" `Quick test_service_retransmit_dedup;
          Alcotest.test_case "duplicate replies deduped" `Quick
            test_service_duplicate_reply_dedup;
          Alcotest.test_case "duplicate request not reopened" `Quick
            test_service_duplicate_request_replay;
          Alcotest.test_case "degraded flag" `Quick test_service_degraded_flag;
          Alcotest.test_case "retry stack recovers under loss" `Quick
            test_retry_stack_recovers_under_loss;
          Alcotest.test_case "intercept repair" `Quick test_service_intercept_repair;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "poll retry" `Quick test_monitor_poll_retry;
          Alcotest.test_case "distinct poll xids" `Quick test_monitor_poll_xids_distinct;
        ] );
      ( "agent",
        [
          Alcotest.test_case "resend once" `Quick test_agent_resend_once;
          Alcotest.test_case "resend recovers answer" `Quick
            test_agent_resend_recovers_answer;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "magic-port traffic forwarded" `Quick
            test_magic_port_traffic_forwarded;
          Alcotest.test_case "wiring cleanup + reentrancy" `Quick
            test_wiring_cleanup_and_reentrancy;
        ] );
    ]
