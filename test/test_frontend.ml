(* Multi-tenant front-end: admission, coalescing, batching.

   Unit level drives [Rvaas.Frontend] directly (it is protocol-free by
   design: waiters are plain ints here).  System level drives the
   served path — [Service.inject_query] for fan-in shape, real client
   agents for the signed throttle verdict and the batched-vs-per-query
   differential. *)

let check = Alcotest.check

let p = Workload.Topogen.default_params

module F = Rvaas.Frontend

let scope_a () = Rvaas.Verifier.ip_traffic_hs ()

let scope_b i = Rvaas.Verifier.dst_ip_hs i

(* ---- unit: config validation ---- *)

let test_config_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  let mk limits batch_window : int F.t =
    F.create { F.limits; coalesce = true; batch_window; subsume = false }
  in
  check Alcotest.bool "zero rate rejected" true
    (raises (fun () -> mk (Some { F.rate = 0.0; burst = 2.0 }) 0.0));
  check Alcotest.bool "burst < 1 rejected" true
    (raises (fun () -> mk (Some { F.rate = 1.0; burst = 0.5 }) 0.0));
  check Alcotest.bool "negative window rejected" true
    (raises (fun () -> mk None (-0.001)));
  check Alcotest.bool "valid config accepted" true
    (match mk (Some { F.rate = 1.0; burst = 1.0 }) 0.01 with
    | _ -> true)

(* ---- unit: token-bucket admission ---- *)

let test_token_bucket () =
  let fe : int F.t =
    F.create
      {
        F.limits = Some { F.rate = 1.0; burst = 2.0 };
        coalesce = false;
        batch_window = 0.0;
        subsume = false;
      }
  in
  (* Fresh bucket starts full: the burst passes, the next query not. *)
  check Alcotest.bool "burst 1 admitted" true (F.admit fe ~client:0 ~now:0.0);
  check Alcotest.bool "burst 2 admitted" true (F.admit fe ~client:0 ~now:0.0);
  check Alcotest.bool "over budget throttled" false (F.admit fe ~client:0 ~now:0.0);
  (* Buckets are per client: a victim tenant is unaffected. *)
  check Alcotest.bool "other client admitted" true (F.admit fe ~client:1 ~now:0.0);
  (* One second refills one token at rate = 1/s — and only one. *)
  check Alcotest.bool "refilled after 1s" true (F.admit fe ~client:0 ~now:1.0);
  check Alcotest.bool "refill is not a reset" false (F.admit fe ~client:0 ~now:1.0);
  (* Refill caps at burst. *)
  check Alcotest.bool "cap 1" true (F.admit fe ~client:0 ~now:100.0);
  check Alcotest.bool "cap 2" true (F.admit fe ~client:0 ~now:100.0);
  check Alcotest.bool "cap 3" false (F.admit fe ~client:0 ~now:100.0);
  let s = F.stats fe in
  check Alcotest.int "admissions counted" 6 s.F.admitted;
  check Alcotest.int "throttles counted" 3 s.F.throttled;
  (* Unlimited config admits everything. *)
  let open_fe : int F.t = F.create F.default_config in
  for _ = 1 to 50 do
    check Alcotest.bool "no limits: admitted" true (F.admit open_fe ~client:0 ~now:0.0)
  done

(* ---- unit: coalescing keys (observed through submit) ---- *)

let test_coalescing_keys () =
  let fe : int F.t = F.create (F.coalescing ()) in
  let submit ~client ~sw ~port q w =
    (* Mirror the service flow: admission first (no limits here — it
       only feeds the admitted counter the coalesce rate divides by). *)
    ignore (F.admit fe ~client ~now:0.0);
    F.submit fe ~key:(F.key_of ~client ~sw ~port q) ~client ~sw ~port q ~waiter:w
  in
  let reach = Rvaas.Query.make ~scope:(scope_a ()) Rvaas.Query.Reachable_endpoints in
  check Alcotest.bool "first opens the queue" true
    (submit ~client:0 ~sw:1 ~port:1 reach 0 = `Queued `First);
  (* Reachability does not depend on the asking tenant: a different
     client's identical question coalesces. *)
  check Alcotest.bool "same question, other client coalesces" true
    (submit ~client:1 ~sw:1 ~port:1 reach 1 = `Coalesced);
  (* A different injection point is a different question. *)
  check Alcotest.bool "other point queued" true
    (submit ~client:0 ~sw:2 ~port:1 reach 2 = `Queued `Later);
  (* Isolation is per tenant... *)
  let iso = Rvaas.Query.make Rvaas.Query.Isolation in
  check Alcotest.bool "isolation c0 queued" true
    (submit ~client:0 ~sw:1 ~port:1 iso 3 = `Queued `Later);
  check Alcotest.bool "isolation c1 not folded into c0" true
    (submit ~client:1 ~sw:1 ~port:1 iso 4 = `Queued `Later);
  (* ...but ignores its scope at evaluation, so differently-scoped
     isolation queries are still the same question. *)
  let iso_scoped = Rvaas.Query.make ~scope:(scope_b 7) Rvaas.Query.Isolation in
  check Alcotest.bool "isolation scope irrelevant" true
    (submit ~client:0 ~sw:1 ~port:1 iso_scoped 5 = `Coalesced);
  check Alcotest.int "four distinct computations" 4 (F.queued fe);
  let groups = F.flush fe in
  let leader = List.hd (List.hd groups) in
  check Alcotest.int "both waiters on the folded entry" 2
    (List.length leader.F.e_waiters);
  check (Alcotest.float 1e-9) "coalesce rate" (2.0 /. 6.0) (F.coalesce_rate fe);
  (* The flush cleared the coalescing table: the same key queues anew. *)
  check Alcotest.bool "post-flush key is fresh" true
    (submit ~client:0 ~sw:1 ~port:1 reach 6 = `Queued `First)

(* ---- unit: flush pools batchable entries per injection point ---- *)

let test_flush_batching () =
  let fe : int F.t = F.create (F.coalescing ()) in
  let submit ~client ~sw ~port q w =
    ignore (F.submit fe ~key:(F.key_of ~client ~sw ~port q) ~client ~sw ~port q ~waiter:w)
  in
  let reach scope = Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints in
  (* Two differently-scoped reach queries at one point pool; a third at
     another point and an isolation query stay alone. *)
  submit ~client:0 ~sw:1 ~port:1 (reach (scope_b 1)) 0;
  submit ~client:0 ~sw:1 ~port:1 (reach (scope_b 2)) 1;
  submit ~client:0 ~sw:2 ~port:1 (reach (scope_b 1)) 2;
  submit ~client:0 ~sw:1 ~port:1 (Rvaas.Query.make Rvaas.Query.Isolation) 3;
  let groups = F.flush fe in
  check Alcotest.int "three evaluation groups" 3 (List.length groups);
  check
    Alcotest.(list int)
    "one pooled pair" [ 1; 1; 2 ]
    (List.sort compare (List.map List.length groups));
  (* The pooled group preserves arrival order. *)
  let pooled = List.find (fun g -> List.length g = 2) groups in
  check
    Alcotest.(list int)
    "pool in arrival order" [ 0; 1 ]
    (List.concat_map (fun e -> e.F.e_waiters) pooled);
  let s = F.stats fe in
  check Alcotest.int "entries" 4 s.F.entries;
  check Alcotest.int "batches" 1 s.F.batches;
  check Alcotest.int "batched" 2 s.F.batched;
  check Alcotest.int "flushes" 1 s.F.flushes;
  check Alcotest.int "queue drained" 0 (F.queued fe);
  (* A fallback returns the pooled pair to the per-entry column. *)
  F.note_fallback fe 2;
  check Alcotest.int "fallback unwinds batches" 0 s.F.batches;
  check Alcotest.int "fallback unwinds batched" 0 s.F.batched;
  check Alcotest.int "fallback counted" 2 s.F.batch_fallbacks;
  check Alcotest.(list (list int)) "empty flush" [] (F.flush fe |> List.map (List.map (fun e -> e.F.e_client)))

(* ---- unit: subsumption queue — submit-time attach and flush fold ---- *)

let test_subsumption_queue () =
  let fe : int F.t = F.create (F.coalescing ~subsume:true ()) in
  let submit ~client ~sw ~port ~scope q w =
    ignore (F.admit fe ~client ~now:0.0);
    F.submit fe ~key:(F.key_of ~client ~sw ~port q) ~scope ~client ~sw ~port q
      ~waiter:w
  in
  let broad_scope = scope_a () in
  let narrow_scope = scope_b 7 in
  let broad = Rvaas.Query.make ~scope:broad_scope Rvaas.Query.Reachable_endpoints in
  let narrow = Rvaas.Query.make ~scope:narrow_scope Rvaas.Query.Reachable_endpoints in
  (* Broad first: the narrower scope attaches at submit time. *)
  check Alcotest.bool "broad opens the queue" true
    (submit ~client:0 ~sw:1 ~port:1 ~scope:broad_scope broad 0 = `Queued `First);
  check Alcotest.bool "contained scope subsumed" true
    (submit ~client:1 ~sw:1 ~port:1 ~scope:narrow_scope narrow 1 = `Subsumed);
  (* An identical narrower question shares the existing slice. *)
  check Alcotest.bool "identical narrow shares the slice" true
    (submit ~client:2 ~sw:1 ~port:1 ~scope:narrow_scope narrow 2 = `Subsumed);
  (* A different injection point has no container. *)
  check Alcotest.bool "other point queued" true
    (submit ~client:0 ~sw:2 ~port:1 ~scope:narrow_scope narrow 3 = `Queued `Later);
  let groups = F.flush fe in
  check Alcotest.int "two evaluation groups" 2 (List.length groups);
  let g = List.find (fun g -> (List.hd g).F.e_sw = 1) groups in
  check Alcotest.int "one computation at the shared point" 1 (List.length g);
  let e = List.hd g in
  check Alcotest.int "one slice riding it" 1 (List.length e.F.e_slices);
  check
    Alcotest.(list int)
    "slice waiters newest first" [ 2; 1 ]
    (List.hd e.F.e_slices).F.sl_waiters;
  (* Narrow-before-broad: submit's forward scan cannot catch it, the
     flush-time fold does. *)
  check Alcotest.bool "narrow reopens the queue" true
    (submit ~client:0 ~sw:1 ~port:1 ~scope:narrow_scope narrow 4 = `Queued `First);
  check Alcotest.bool "broad queued after" true
    (submit ~client:0 ~sw:1 ~port:1 ~scope:broad_scope broad 5 = `Queued `Later);
  (match F.flush fe with
  | [ [ leader ] ] ->
    check Alcotest.(list int) "broad leads the fold" [ 5 ] leader.F.e_waiters;
    check Alcotest.int "narrow folded as slice" 1 (List.length leader.F.e_slices)
  | _ -> Alcotest.fail "expected one folded group");
  let st = F.stats fe in
  check Alcotest.int "subsumed counted" 3 st.F.subsumed;
  check (Alcotest.float 1e-9) "subsume rate" 0.5 (F.subsume_rate fe)

(* ---- system helpers ---- *)

let spec_with topo f = f (Workload.Scenario.default_spec topo)

let first_point (s : Workload.Scenario.t) =
  List.hd (Rvaas.Verifier.access_points (Netsim.Net.topology s.net))

let ip_of (s : Workload.Scenario.t) ~host =
  (Option.get (Sdnctl.Addressing.host s.addressing ~host)).Sdnctl.Addressing.ip

let client_of (s : Workload.Scenario.t) ~host =
  (Option.get (Sdnctl.Addressing.host s.addressing ~host)).Sdnctl.Addressing.client

let settle s =
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0)

(* ---- system: N identical in-flight queries cost one computation ---- *)

let test_service_coalescing () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d -> { d with frontend = F.coalescing () }))
  in
  let pt = first_point s in
  let client = client_of s ~host:pt.Rvaas.Verifier.host in
  let ip = ip_of s ~host:pt.Rvaas.Verifier.host in
  let q = Rvaas.Query.make ~scope:(scope_a ()) Rvaas.Query.Reachable_endpoints in
  for i = 1 to 8 do
    Rvaas.Service.inject_query s.service ~client ~nonce:(Printf.sprintf "fan-%d" i)
      ~sw:pt.Rvaas.Verifier.sw ~port:pt.Rvaas.Verifier.port ~ip q
  done;
  settle s;
  let fs = Rvaas.Service.frontend_stats s.service in
  check Alcotest.int "one computation" 1 fs.F.entries;
  check Alcotest.int "seven absorbed" 7 fs.F.coalesced;
  check (Alcotest.float 1e-9) "coalesce rate 7/8" (7.0 /. 8.0)
    (Rvaas.Service.coalesce_rate s.service);
  (* Every requester still got its own signed answer under its own
     nonce, and nothing leaked. *)
  check Alcotest.int "eight answers" 8 (Rvaas.Service.stats s.service).answers_sent;
  check Alcotest.int "no open queries" 0 (Rvaas.Service.open_query_count s.service);
  check Alcotest.int "no pending probes" 0 (Rvaas.Service.pending_probe_count s.service)

(* ---- system: the throttle verdict is a signed answer ---- *)

let test_service_throttle_signed () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           {
             d with
             frontend = F.coalescing ~limits:{ F.rate = 0.01; burst = 2.0 } ();
           }))
  in
  let ask () =
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make ~scope:(scope_a ()) Rvaas.Query.Reachable_endpoints)
      ~timeout:2.0
  in
  (* The burst passes untouched... *)
  (match (ask (), ask ()) with
  | Some o1, Some o2 ->
    check Alcotest.bool "burst not throttled" false
      (o1.Rvaas.Client_agent.answer.Rvaas.Query.throttled
      || o2.Rvaas.Client_agent.answer.Rvaas.Query.throttled)
  | _ -> Alcotest.fail "burst queries unanswered");
  (* ...the third is refused — with a verdict as unforgeable as an
     answer, not with silence. *)
  (match ask () with
  | None -> Alcotest.fail "throttle verdict never arrived"
  | Some o ->
    check Alcotest.bool "throttled flagged" true
      o.Rvaas.Client_agent.answer.Rvaas.Query.throttled;
    check Alcotest.bool "throttle verdict signed" true o.Rvaas.Client_agent.signature_ok;
    check Alcotest.bool "empty result set" true
      (o.Rvaas.Client_agent.answer.Rvaas.Query.endpoints = []));
  check Alcotest.int "throttle counted" 1
    (Rvaas.Service.stats s.service).queries_throttled;
  (* The noisy tenant's budget is its own: host 1 (the other client)
     still gets a clean answer. *)
  match
    Workload.Scenario.query_and_wait s ~host:1
      (Rvaas.Query.make ~scope:(scope_a ()) Rvaas.Query.Reachable_endpoints)
      ~timeout:2.0
  with
  | None -> Alcotest.fail "victim unanswered"
  | Some o ->
    check Alcotest.bool "victim not throttled" false
      o.Rvaas.Client_agent.answer.Rvaas.Query.throttled

(* ---- system: batched answers match per-query evaluation ---- *)

let endpoint_points (a : Rvaas.Query.answer) =
  List.sort compare
    (List.map
       (fun (ep : Rvaas.Query.endpoint_report) -> (ep.sw, ep.port))
       a.Rvaas.Query.endpoints)

let batch_parity engine () =
  let topo = Workload.Topogen.linear p 5 in
  let scopes s =
    [ scope_b (ip_of s ~host:2); scope_b (ip_of s ~host:4); scope_a () ]
  in
  (* Reference: the same questions evaluated one by one on a service
     with the front-end off. *)
  let ref_s =
    Workload.Scenario.build (spec_with topo (fun d -> { d with engine }))
  in
  (* Let the monitor complete a poll sweep: [evaluate] reads the
     believed configuration. *)
  settle ref_s;
  let pt = first_point ref_s in
  let expected =
    List.map
      (fun scope ->
        (* [evaluate] returns the probe list as its second component;
           the in-band answer reports exactly those endpoints. *)
        let _, probes =
          Rvaas.Service.evaluate ref_s.service
            ~client:(client_of ref_s ~host:pt.Rvaas.Verifier.host)
            ~sw:pt.Rvaas.Verifier.sw ~port:pt.Rvaas.Verifier.port
            (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
        in
        List.sort compare
          (List.map (fun (ep : Rvaas.Verifier.endpoint) -> (ep.sw, ep.port)) probes))
      (scopes ref_s)
  in
  (* Subject: the same three queries sent back to back by one agent,
     pooled by the settle tick into one sweep over the unioned scope. *)
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with engine; frontend = F.coalescing ~batch_window:0.002 () }))
  in
  settle s;
  let agent = Workload.Scenario.agent s ~host:pt.Rvaas.Verifier.host in
  let outcomes = ref [] in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> outcomes := o :: !outcomes);
  let nonces =
    List.map
      (fun scope ->
        Rvaas.Client_agent.send_query agent
          (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints))
      (scopes s)
  in
  settle s;
  check Alcotest.int "all three answered" 3 (List.length !outcomes);
  let fs = Rvaas.Service.frontend_stats s.service in
  check Alcotest.bool "settle tick pooled them" true
    (fs.F.batched = 3 || fs.F.batch_fallbacks = 3);
  check Alcotest.bool "flush ran" true (fs.F.flushes >= 1);
  List.iteri
    (fun i nonce ->
      let o =
        List.find
          (fun (o : Rvaas.Client_agent.outcome) ->
            String.equal o.answer.Rvaas.Query.nonce nonce)
          !outcomes
      in
      check Alcotest.bool "signed" true o.Rvaas.Client_agent.signature_ok;
      check
        Alcotest.(list (pair int int))
        (Printf.sprintf "query %d: batched = per-query verdict" i)
        (List.nth expected i)
        (endpoint_points o.Rvaas.Client_agent.answer))
    nonces;
  check Alcotest.int "no open queries" 0 (Rvaas.Service.open_query_count s.service)

(* ---- system: sliced answers equal direct evaluation (oracle) ---- *)

(* Reference evaluation: the eager-guard textbook verifier over the
   service's believed configuration, restricted like the service
   restricts ([effective_scope] = scope ∩ IP traffic). *)
let oracle_points (s : Workload.Scenario.t) (pt : Rvaas.Verifier.endpoint) scope =
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
  let r =
    Rvaas.Verifier_ref.reach ~flows_of (Netsim.Net.topology s.net)
      ~src_sw:pt.Rvaas.Verifier.sw ~src_port:pt.Rvaas.Verifier.port
      ~hs:(Hspace.Hs.inter scope (Rvaas.Verifier.ip_traffic_hs ()))
  in
  List.sort compare
    (List.map
       (fun ((ep : Rvaas.Verifier.endpoint), _) -> (ep.sw, ep.port))
       r.Rvaas.Verifier.endpoints)

(* Send a broad and a narrow query back to back from the same agent (so
   the settle tick sees both) and return their outcomes. *)
let subsume_round s (pt : Rvaas.Verifier.endpoint) ~broad ~narrow =
  let agent = Workload.Scenario.agent s ~host:pt.Rvaas.Verifier.host in
  let outcomes = ref [] in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> outcomes := o :: !outcomes);
  let send scope =
    Rvaas.Client_agent.send_query agent
      (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
  in
  let n_broad = send broad in
  let n_narrow = send narrow in
  settle s;
  let find n =
    List.find_opt
      (fun (o : Rvaas.Client_agent.outcome) ->
        String.equal o.answer.Rvaas.Query.nonce n)
      !outcomes
  in
  (find n_broad, find n_narrow)

(* Random subsumer/subsumee pairs: the broad scope is a union of
   destination-host cubes, the narrow scope one of those cubes — so
   containment holds by construction and the answers can be checked
   against [Verifier_ref] independently of the subsumption machinery.
   With [attack] set, an exfiltration rewrite taints the region and the
   service must fall back to per-query evaluation — same verdicts. *)
let prop_subsume_parity engine ?attack ~name () =
  let topo = Workload.Topogen.linear p 5 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           {
             d with
             engine;
             frontend = F.coalescing ~batch_window:0.002 ~subsume:true ();
           }))
  in
  (match attack with
  | Some a ->
    Sdnctl.Attack.launch s.net s.addressing ~conn:(Sdnctl.Provider.conn s.provider) a
  | None -> ());
  settle s;
  let pt = first_point s in
  QCheck2.Test.make ~name ~count:8
    QCheck2.Gen.(pair (int_range 1 31) (int_range 0 100))
    (fun (mask, pick) ->
      let subset = List.filter (fun h -> (mask lsr h) land 1 = 1) [ 0; 1; 2; 3; 4 ] in
      let broad =
        List.fold_left
          (fun acc h -> Hspace.Hs.union acc (scope_b (ip_of s ~host:h)))
          (Hspace.Hs.empty Hspace.Field.total_width)
          subset
      in
      let narrow = scope_b (ip_of s ~host:(List.nth subset (pick mod List.length subset))) in
      match subsume_round s pt ~broad ~narrow with
      | Some ob, Some on ->
        ob.Rvaas.Client_agent.signature_ok
        && on.Rvaas.Client_agent.signature_ok
        && endpoint_points ob.Rvaas.Client_agent.answer = oracle_points s pt broad
        && endpoint_points on.Rvaas.Client_agent.answer = oracle_points s pt narrow
      | _ -> false)

(* ---- system: the subsumption counters on the served path ---- *)

let test_service_subsume_fanin () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with frontend = F.coalescing ~batch_window:0.002 ~subsume:true () }))
  in
  settle s;
  let pt = first_point s in
  (match subsume_round s pt ~broad:(scope_a ()) ~narrow:(scope_b (ip_of s ~host:2)) with
  | Some _, Some on ->
    check
      Alcotest.(list (pair int int))
      "sliced verdict equals direct evaluation"
      (oracle_points s pt (scope_b (ip_of s ~host:2)))
      (endpoint_points on.Rvaas.Client_agent.answer)
  | _ -> Alcotest.fail "subsumed round unanswered");
  let fs = Rvaas.Service.frontend_stats s.service in
  check Alcotest.int "one computation" 1 fs.F.entries;
  check Alcotest.int "narrow subsumed" 1 fs.F.subsumed;
  check Alcotest.int "nothing fell back" 0 fs.F.slice_fallbacks;
  check (Alcotest.float 1e-9) "subsume rate 1/2" 0.5
    (Rvaas.Service.subsume_rate s.service);
  check Alcotest.int "no open queries" 0 (Rvaas.Service.open_query_count s.service);
  check Alcotest.int "no pending probes" 0
    (Rvaas.Service.pending_probe_count s.service)

(* ---- system: rewrite taint falls back, counted, same verdicts ---- *)

let test_service_subsume_taint_fallback () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           { d with frontend = F.coalescing ~batch_window:0.002 ~subsume:true () }))
  in
  Sdnctl.Attack.launch s.net s.addressing ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 3 });
  settle s;
  let pt = first_point s in
  let narrow = scope_b (ip_of s ~host:2) in
  (match subsume_round s pt ~broad:(scope_a ()) ~narrow with
  | Some _, Some on ->
    check
      Alcotest.(list (pair int int))
      "fallback verdict equals direct evaluation" (oracle_points s pt narrow)
      (endpoint_points on.Rvaas.Client_agent.answer)
  | _ -> Alcotest.fail "tainted round unanswered");
  let fs = Rvaas.Service.frontend_stats s.service in
  check Alcotest.int "attach still counted" 1 fs.F.subsumed;
  check Alcotest.int "slice fell back" 1 fs.F.slice_fallbacks;
  check Alcotest.int "no open queries" 0 (Rvaas.Service.open_query_count s.service)

(* ---- system: a throttled query never enters the subsumption graph ---- *)

let test_throttled_never_subsumed () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      (spec_with topo (fun d ->
           {
             d with
             frontend =
               F.coalescing
                 ~limits:{ F.rate = 0.01; burst = 1.0 }
                 ~batch_window:0.05 ~subsume:true ();
           }))
  in
  settle s;
  let pt = first_point s in
  let client = client_of s ~host:pt.Rvaas.Verifier.host in
  let ip = ip_of s ~host:pt.Rvaas.Verifier.host in
  let inject nonce scope =
    Rvaas.Service.inject_query s.service ~client ~nonce ~sw:pt.Rvaas.Verifier.sw
      ~port:pt.Rvaas.Verifier.port ~ip
      (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
  in
  (* The broad query is admitted and queued; the narrower one — which
     would otherwise ride it as a slice — blows the budget and must be
     refused before any subsumption decision is made. *)
  inject "broad" (scope_a ());
  inject "narrow" (scope_b (ip_of s ~host:2));
  let fs = Rvaas.Service.frontend_stats s.service in
  check Alcotest.int "refused, not subsumed" 0 fs.F.subsumed;
  check Alcotest.int "throttle counted" 1 fs.F.throttled;
  check Alcotest.int "throttle answered" 1
    (Rvaas.Service.stats s.service).queries_throttled;
  settle s;
  check Alcotest.int "only the broad computation ran" 1 fs.F.entries;
  check Alcotest.int "still nothing subsumed" 0 fs.F.subsumed;
  check Alcotest.int "no open queries" 0 (Rvaas.Service.open_query_count s.service)

let () =
  Alcotest.run "frontend"
    [
      ( "unit",
        [
          Alcotest.test_case "config validation" `Quick test_config_validation;
          Alcotest.test_case "token bucket" `Quick test_token_bucket;
          Alcotest.test_case "coalescing keys" `Quick test_coalescing_keys;
          Alcotest.test_case "flush batching" `Quick test_flush_batching;
          Alcotest.test_case "subsumption queue" `Quick test_subsumption_queue;
        ] );
      ( "service",
        [
          Alcotest.test_case "coalescing fan-in" `Quick test_service_coalescing;
          Alcotest.test_case "signed throttle verdict" `Quick
            test_service_throttle_signed;
          Alcotest.test_case "batch parity (sweep)" `Quick (batch_parity `Sweep);
          Alcotest.test_case "batch parity (compiled)" `Quick (batch_parity `Compiled);
          Alcotest.test_case "subsumption fan-in" `Quick test_service_subsume_fanin;
          Alcotest.test_case "taint fallback" `Quick
            test_service_subsume_taint_fallback;
          Alcotest.test_case "throttled never subsumed" `Quick
            test_throttled_never_subsumed;
        ] );
      ( "subsume-parity",
        [
          QCheck_alcotest.to_alcotest
            (prop_subsume_parity `Sweep ~name:"sliced = direct (sweep)" ());
          QCheck_alcotest.to_alcotest
            (prop_subsume_parity `Compiled ~name:"sliced = direct (compiled)" ());
          QCheck_alcotest.to_alcotest
            (prop_subsume_parity `Sweep
               ~attack:(Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 4 })
               ~name:"sliced = direct under taint (sweep)" ());
          QCheck_alcotest.to_alcotest
            (prop_subsume_parity `Compiled
               ~attack:(Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 4 })
               ~name:"sliced = direct under taint (compiled)" ());
        ] );
    ]
