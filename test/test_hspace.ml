(* Unit + property tests for the header-space algebra.  The property
   tests check the cube algebra against a concrete-membership oracle:
   set operations must agree with membership of random concrete
   headers. *)

let check = Alcotest.check

let w = 16 (* small width keeps oracles readable; the full 228-bit
              width is exercised by the field/header tests below *)

module T = Hspace.Tern
module Hs = Hspace.Hs

let t_of s = T.of_string s

(* ---- Tern basics ---- *)

let test_tern_roundtrip () =
  let s = "01x01xxx10z01x0x" in
  check Alcotest.string "roundtrip" s (T.to_string (t_of s))

let test_tern_get_set () =
  let t = T.all_x 8 in
  let t = T.set t 3 T.One in
  check Alcotest.bool "set bit" true (T.get t 3 = T.One);
  check Alcotest.bool "others untouched" true (T.get t 2 = T.Any);
  let t = T.set t 3 T.Zero in
  check Alcotest.bool "overwrite" true (T.get t 3 = T.Zero)

let test_tern_empty_full_concrete () =
  check Alcotest.bool "all_x full" true (T.is_full (T.all_x 40));
  check Alcotest.bool "all_x not empty" false (T.is_empty (T.all_x 40));
  check Alcotest.bool "z means empty" true (T.is_empty (t_of "0z1"));
  check Alcotest.bool "concrete" true (T.is_concrete (t_of "0101"));
  check Alcotest.bool "not concrete" false (T.is_concrete (t_of "01x1"))

let test_tern_word_boundary () =
  (* Widths straddling the 31-bit word packing. *)
  List.iter
    (fun width ->
      let t = T.all_x width in
      check Alcotest.bool "full at width" true (T.is_full t);
      let t = T.set t (width - 1) T.One in
      check Alcotest.bool "last bit readable" true (T.get t (width - 1) = T.One);
      check Alcotest.bool "non-empty" false (T.is_empty t);
      let u = T.set t (width - 1) T.Zero in
      check Alcotest.bool "disjoint at last bit" true (T.is_empty (T.inter t u)))
    [ 30; 31; 32; 61; 62; 63; 93; 228 ]

let test_tern_inter () =
  let a = t_of "01xx" and b = t_of "0x1x" in
  check Alcotest.string "intersection" "011x" (T.to_string (T.inter a b));
  let c = t_of "1xxx" in
  check Alcotest.bool "conflicting bit empties" true (T.is_empty (T.inter a c))

let test_tern_subset () =
  check Alcotest.bool "concrete in cube" true (T.subset (t_of "0110") (t_of "01xx"));
  check Alcotest.bool "cube not in concrete" false (T.subset (t_of "01xx") (t_of "0110"));
  check Alcotest.bool "reflexive" true (T.subset (t_of "01x") (t_of "01x"));
  check Alcotest.bool "empty in anything" true (T.subset (t_of "z10") (t_of "000"))

let test_tern_complement () =
  let cs = T.complement (t_of "01x") in
  check Alcotest.int "one cube per fixed bit" 2 (List.length cs);
  (* Every concrete vector is in the cube xor its complement. *)
  let rng = Support.Rng.create 11 in
  for _ = 1 to 100 do
    let v = T.random_concrete rng 3 in
    let in_cube = T.mem v (t_of "01x")
    and in_compl = List.exists (T.mem v) cs in
    check Alcotest.bool "partition" true (in_cube <> in_compl)
  done;
  check Alcotest.int "complement of full is empty union" 0
    (List.length (T.complement (T.all_x 4)))

let test_tern_diff () =
  (* a \ a = empty; a \ disjoint = a *)
  let a = t_of "01xx" in
  check Alcotest.int "self difference" 0 (List.length (T.diff a a));
  let disjoint = t_of "10xx" in
  check Alcotest.int "disjoint difference" 1 (List.length (T.diff a disjoint));
  check Alcotest.bool "disjoint difference is a" true (T.equal a (List.hd (T.diff a disjoint)))

let test_tern_count_fixed () =
  check Alcotest.int "count" 3 (T.count_fixed (t_of "01x0xx"))

let test_tern_of_string_invalid () =
  Alcotest.check_raises "bad char" (Invalid_argument "Tern.of_string: bad character")
    (fun () -> ignore (t_of "01a"))

(* ---- membership oracle properties ---- *)

let rng = Support.Rng.create 1234

let random_cube () = T.random rng w ~fixed_prob:0.4

let random_hs () =
  let n = 1 + Support.Rng.int rng 3 in
  Hs.of_cubes w (List.init n (fun _ -> random_cube ()))

let sample_vectors n = List.init n (fun _ -> T.random_concrete rng w)

let iterate ~name ~count f =
  Alcotest.test_case name `Quick (fun () ->
      for _ = 1 to count do
        f ()
      done)

let oracle_tests =
  [
    iterate ~name:"inter = membership and" ~count:300 (fun () ->
        let a = random_cube () and b = random_cube () in
        let i = T.inter a b in
        List.iter
          (fun v ->
            let lhs = (not (T.is_empty i)) && T.mem v i
            and rhs = T.mem v a && T.mem v b in
            check Alcotest.bool "inter oracle" rhs lhs)
          (sample_vectors 20));
    iterate ~name:"diff = membership minus" ~count:300 (fun () ->
        let a = random_cube () and b = random_cube () in
        let d = T.diff a b in
        List.iter
          (fun v ->
            let lhs = List.exists (T.mem v) d
            and rhs = T.mem v a && not (T.mem v b) in
            check Alcotest.bool "diff oracle" rhs lhs)
          (sample_vectors 20));
    iterate ~name:"complement = membership not" ~count:300 (fun () ->
        let a = random_cube () in
        let c = T.complement a in
        List.iter
          (fun v ->
            let lhs = List.exists (T.mem v) c
            and rhs = not (T.mem v a) in
            check Alcotest.bool "complement oracle" rhs lhs)
          (sample_vectors 20));
    iterate ~name:"subset = membership implication" ~count:300 (fun () ->
        let a = random_cube () and b = random_cube () in
        if T.subset a b then
          List.iter
            (fun v -> if T.mem v a then check Alcotest.bool "subset oracle" true (T.mem v b))
            (sample_vectors 20));
    iterate ~name:"hs algebra: union/inter/diff" ~count:100 (fun () ->
        let a = random_hs () and b = random_hs () in
        let u = Hs.union a b and i = Hs.inter a b and d = Hs.diff a b in
        List.iter
          (fun v ->
            let ma = Hs.mem v a and mb = Hs.mem v b in
            check Alcotest.bool "union oracle" (ma || mb) (Hs.mem v u);
            check Alcotest.bool "inter oracle" (ma && mb) (Hs.mem v i);
            check Alcotest.bool "diff oracle" (ma && not mb) (Hs.mem v d))
          (sample_vectors 20));
    iterate ~name:"hs complement involution (semantic)" ~count:8 (fun () ->
        let a = Hs.of_cubes w (List.init 2 (fun _ -> random_cube ())) in
        let cc = Hs.complement (Hs.complement a) in
        check Alcotest.bool "double complement" true (Hs.equal a cc));
    iterate ~name:"hs subset/equal laws" ~count:100 (fun () ->
        let a = random_hs () and b = random_hs () in
        check Alcotest.bool "a subset union" true (Hs.subset a (Hs.union a b));
        check Alcotest.bool "inter subset a" true (Hs.subset (Hs.inter a b) a);
        check Alcotest.bool "diff disjoint b" true
          (not (Hs.overlaps (Hs.diff a b) b)));
    iterate ~name:"inter_cube / diff_cube match generic ops" ~count:150 (fun () ->
        let a = random_hs () and c = random_cube () in
        let i1 = Hs.inter_cube a c and i2 = Hs.inter a (Hs.of_cube c) in
        let d1 = Hs.diff_cube a c and d2 = Hs.diff a (Hs.of_cube c) in
        check Alcotest.bool "inter_cube" true (Hs.equal i1 i2);
        check Alcotest.bool "diff_cube" true (Hs.equal d1 d2));
    iterate ~name:"de morgan" ~count:6 (fun () ->
        let a = Hs.of_cube (random_cube ()) and b = Hs.of_cube (random_cube ()) in
        (* ¬(a ∪ b) = ¬a ∩ ¬b *)
        let lhs = Hs.complement (Hs.union a b) in
        let rhs = Hs.inter (Hs.complement a) (Hs.complement b) in
        check Alcotest.bool "complement of union" true (Hs.equal lhs rhs));
    iterate ~name:"diff via complement" ~count:6 (fun () ->
        let a = random_hs () and b = Hs.of_cube (random_cube ()) in
        (* a \ b = a ∩ ¬b *)
        let lhs = Hs.diff a b and rhs = Hs.inter a (Hs.complement b) in
        check Alcotest.bool "diff = inter complement" true (Hs.equal lhs rhs));
    iterate ~name:"hs sample is a member" ~count:100 (fun () ->
        let a = random_hs () in
        match Hs.sample rng a with
        | None -> check Alcotest.bool "only empty has no sample" true (Hs.is_empty a)
        | Some v -> check Alcotest.bool "sample in set" true (Hs.mem v a));
  ]

(* ---- Hs basics ---- *)

let test_hs_empty_full () =
  check Alcotest.bool "empty" true (Hs.is_empty (Hs.empty w));
  check Alcotest.bool "full minus full empty" true
    (Hs.is_empty (Hs.diff (Hs.full w) (Hs.full w)));
  check Alcotest.bool "complement of empty is full" true
    (Hs.equal (Hs.full w) (Hs.complement (Hs.empty w)))

let test_hs_no_subsumed_cubes () =
  (* Normalisation invariant: no cube in the representation is a subset
     of another. *)
  let rng = Support.Rng.create 31 in
  for _ = 1 to 100 do
    let a =
      Hs.of_cubes w (List.init 4 (fun _ -> T.random rng w ~fixed_prob:0.3))
    in
    let b =
      Hs.of_cubes w (List.init 4 (fun _ -> T.random rng w ~fixed_prob:0.3))
    in
    let check_invariant hs =
      let cubes = Hs.cubes hs in
      List.iteri
        (fun i c ->
          List.iteri
            (fun j d ->
              if i <> j then
                check Alcotest.bool "no subsumed cube" false (T.subset c d))
            cubes)
        cubes
    in
    check_invariant (Hs.union a b);
    check_invariant (Hs.inter a b);
    check_invariant (Hs.diff a b)
  done

let test_hs_normalisation () =
  (* A cube subsumed by another is dropped. *)
  let big = t_of ("01" ^ String.make (w - 2) 'x') in
  let small = t_of ("011" ^ String.make (w - 3) 'x') in
  let hs = Hs.of_cubes w [ small; big ] in
  check Alcotest.int "subsumed cube dropped" 1 (Hs.cube_count hs);
  (* Duplicates collapse. *)
  let dup = Hs.of_cubes w [ big; big; big ] in
  check Alcotest.int "duplicates collapse" 1 (Hs.cube_count dup)

(* ---- Field / Header ---- *)

let test_field_layout () =
  check Alcotest.int "total width" 228 Hspace.Field.total_width;
  (* Offsets are contiguous and non-overlapping. *)
  let rec walk expected = function
    | [] -> ()
    | f :: rest ->
      check Alcotest.int
        ("offset of " ^ Hspace.Field.name_to_string f)
        expected (Hspace.Field.offset f);
      walk (expected + Hspace.Field.bit_width f) rest
  in
  walk 0 Hspace.Field.all

let test_field_set_get () =
  let t = Hspace.Tern.all_x Hspace.Field.total_width in
  let t = Hspace.Field.set_exact t Hspace.Field.Ip_dst 0x0A000105 in
  check Alcotest.bool "get back" true
    (Hspace.Field.get_exact t Hspace.Field.Ip_dst = Some 0x0A000105);
  check Alcotest.bool "unset field is None" true
    (Hspace.Field.get_exact t Hspace.Field.Ip_src = None)

let test_field_prefix () =
  let t = Hspace.Tern.all_x Hspace.Field.total_width in
  let t = Hspace.Field.set_prefix t Hspace.Field.Ip_dst ~value:0x0A010000 ~prefix_len:16 in
  (* Any address within 10.1/16 must be a member. *)
  let member ip =
    let v = Hspace.Field.set_exact (Hspace.Tern.all_x Hspace.Field.total_width)
        Hspace.Field.Ip_dst ip in
    Hspace.Tern.overlaps v t
  in
  check Alcotest.bool "inside prefix" true (member 0x0A01FFFF);
  check Alcotest.bool "inside prefix 2" true (member 0x0A010000);
  check Alcotest.bool "outside prefix" false (member 0x0A020000)

let test_header_tern_roundtrip () =
  let rng = Support.Rng.create 77 in
  for _ = 1 to 50 do
    let h = Hspace.Header.random rng in
    let h' = Hspace.Header.of_tern (Hspace.Header.to_tern h) in
    check Alcotest.bool "roundtrip" true (Hspace.Header.equal h h')
  done

let test_header_udp () =
  let h = Hspace.Header.udp ~src_ip:1 ~dst_ip:2 ~src_port:3 ~dst_port:4 in
  check Alcotest.int "eth_type" Hspace.Header.eth_type_ip h.eth_type;
  check Alcotest.int "proto" Hspace.Header.proto_udp h.ip_proto;
  check Alcotest.int "dst ip" 2 (Hspace.Header.get h Hspace.Field.Ip_dst);
  check Alcotest.int "dst port" 4 (Hspace.Header.get h Hspace.Field.Tp_dst)

let test_header_set_truncates () =
  let h = Hspace.Header.set Hspace.Header.default Hspace.Field.Vlan 0xFFFF in
  check Alcotest.int "vlan truncated to 12 bits" 0xFFF h.vlan

(* ---- qcheck: packed representation vs naive string model ---- *)

let tern_gen =
  QCheck2.Gen.(
    let bit = oneofl [ '0'; '1'; 'x' ] in
    map
      (fun chars -> String.init (List.length chars) (List.nth chars))
      (list_size (int_range 1 80) bit))

let naive_inter a b =
  String.mapi
    (fun i ca ->
      let cb = b.[i] in
      match ca, cb with
      | 'x', c | c, 'x' -> c
      | ca, cb when ca = cb -> ca
      | _ -> 'z')
    a

let prop_inter_matches_naive =
  QCheck2.Test.make ~name:"packed inter = naive string inter" ~count:500
    QCheck2.Gen.(pair tern_gen tern_gen)
    (fun (a, b) ->
      let b = String.sub (b ^ String.make 80 'x') 0 (String.length a) in
      let packed = T.to_string (T.inter (t_of a) (t_of b)) in
      let naive = naive_inter a b in
      (* Both encode the same set: z anywhere means empty. *)
      if String.contains naive 'z' then T.is_empty (T.inter (t_of a) (t_of b))
      else String.equal packed naive)

(* ---- qcheck: Hs algebra vs brute-force enumeration ---- *)

(* Width 8 keeps the concrete universe (256 vectors) fully enumerable,
   so every set operation can be checked against literal membership of
   the whole space rather than sampled vectors. *)
let bw = 8

let enum_all =
  List.init (1 lsl bw) (fun v ->
      t_of (String.init bw (fun i -> if (v lsr i) land 1 = 1 then '1' else '0')))

let cube8_gen =
  QCheck2.Gen.(
    map
      (fun chars -> t_of (String.init bw (List.nth chars)))
      (* the occasional z exercises empty-cube dropping *)
      (list_repeat bw (frequencyl [ (3, '0'); (3, '1'); (4, 'x'); (1, 'z') ])))

let cubes8_gen = QCheck2.Gen.(list_size (int_range 0 4) cube8_gen)

let prop_hs_ops_brute_force =
  QCheck2.Test.make ~name:"union/inter/diff/complement = enumeration" ~count:200
    QCheck2.Gen.(pair cubes8_gen cubes8_gen)
    (fun (ca, cb) ->
      let a = Hs.of_cubes bw ca and b = Hs.of_cubes bw cb in
      let u = Hs.union a b
      and i = Hs.inter a b
      and d = Hs.diff a b
      and c = Hs.complement a in
      List.for_all
        (fun v ->
          let ma = Hs.mem v a and mb = Hs.mem v b in
          Hs.mem v u = (ma || mb)
          && Hs.mem v i = (ma && mb)
          && Hs.mem v d = (ma && not mb)
          && Hs.mem v c = not ma)
        enum_all)

let prop_hs_subset_brute_force =
  QCheck2.Test.make ~name:"subset = enumeration" ~count:200
    QCheck2.Gen.(pair cubes8_gen cubes8_gen)
    (fun (ca, cb) ->
      let a = Hs.of_cubes bw ca and b = Hs.of_cubes bw cb in
      Hs.subset a b
      = List.for_all (fun v -> (not (Hs.mem v a)) || Hs.mem v b) enum_all)

let prop_builder_matches_ref =
  (* The batch builder and the original quadratic normaliser must agree
     on the normal form itself (the set of maximal cubes is unique), not
     merely denote the same set. *)
  QCheck2.Test.make ~name:"batch builder = reference normalise" ~count:300
    QCheck2.Gen.(list_size (int_range 0 8) cube8_gen)
    (fun cs ->
      let fast = Hs.of_cubes bw cs and slow = Hs.of_cubes_ref bw cs in
      let sorted hs = List.sort T.compare (Hs.cubes hs) in
      List.equal T.equal (sorted fast) (sorted slow) && Hs.equal fast slow)

let prop_bound_contains_cubes =
  QCheck2.Test.make ~name:"bound contains every cube" ~count:200 cubes8_gen
    (fun cs ->
      let a = Hs.of_cubes bw cs in
      List.for_all (fun c -> T.subset c (Hs.bound a)) (Hs.cubes a))

let prop_hash_respects_structure =
  QCheck2.Test.make ~name:"structurally equal sets hash equally" ~count:200
    cubes8_gen
    (fun cs ->
      (* Same cubes presented in reverse order must reach the same
         normal form and therefore the same (order-independent) hash. *)
      Hs.hash (Hs.of_cubes bw cs) = Hs.hash (Hs.of_cubes bw (List.rev cs)))

let () =
  Alcotest.run "hspace"
    [
      ( "tern",
        [
          Alcotest.test_case "string roundtrip" `Quick test_tern_roundtrip;
          Alcotest.test_case "get/set" `Quick test_tern_get_set;
          Alcotest.test_case "empty/full/concrete" `Quick test_tern_empty_full_concrete;
          Alcotest.test_case "word boundaries" `Quick test_tern_word_boundary;
          Alcotest.test_case "intersection" `Quick test_tern_inter;
          Alcotest.test_case "subset" `Quick test_tern_subset;
          Alcotest.test_case "complement" `Quick test_tern_complement;
          Alcotest.test_case "difference" `Quick test_tern_diff;
          Alcotest.test_case "count_fixed" `Quick test_tern_count_fixed;
          Alcotest.test_case "of_string invalid" `Quick test_tern_of_string_invalid;
          QCheck_alcotest.to_alcotest prop_inter_matches_naive;
        ] );
      ("oracle", oracle_tests);
      ( "hs",
        [
          Alcotest.test_case "empty/full" `Quick test_hs_empty_full;
          Alcotest.test_case "normalisation" `Quick test_hs_normalisation;
          Alcotest.test_case "no subsumed cubes" `Quick test_hs_no_subsumed_cubes;
          QCheck_alcotest.to_alcotest prop_hs_ops_brute_force;
          QCheck_alcotest.to_alcotest prop_hs_subset_brute_force;
          QCheck_alcotest.to_alcotest prop_builder_matches_ref;
          QCheck_alcotest.to_alcotest prop_bound_contains_cubes;
          QCheck_alcotest.to_alcotest prop_hash_respects_structure;
        ] );
      ( "field+header",
        [
          Alcotest.test_case "layout" `Quick test_field_layout;
          Alcotest.test_case "set/get" `Quick test_field_set_get;
          Alcotest.test_case "prefix" `Quick test_field_prefix;
          Alcotest.test_case "header/tern roundtrip" `Quick test_header_tern_roundtrip;
          Alcotest.test_case "udp constructor" `Quick test_header_udp;
          Alcotest.test_case "set truncates" `Quick test_header_set_truncates;
        ] );
    ]
