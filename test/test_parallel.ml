(* Tier-1 coverage for the parallel + incremental verification engine:
   pooled sweeps must be observationally identical to the sequential
   paths (byte-for-byte on the header spaces), and the digest-keyed
   reach cache must never mask a reconfiguration — the rule-injection
   attack has to surface even when the previous answer was cached. *)

let check = Alcotest.check

(* Worker domains are a bounded OS resource: every test case shares one
   pool, spawned lazily on first use. *)
let pool4 = lazy (Support.Pool.create 4)

let build ?(clients = 2) ?(isolation = true) topo =
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients; isolation }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  s

let endpoint_line ((ep : Rvaas.Verifier.endpoint), hs) =
  Printf.sprintf "%d/%d/%d:%s" ep.host ep.sw ep.port
    (String.concat "+"
       (List.sort String.compare
          (List.map Hspace.Tern.to_string (Hspace.Hs.cubes hs))))

let endpoints_fingerprint eps = List.map endpoint_line eps

(* ---- Verifier.sources_reaching: parallel = sequential ---- *)

let test_sources_reaching_equal topo () =
  let s = build topo in
  let flows_of = Workload.Scenario.actual_flows s in
  let hs = Rvaas.Verifier.ip_traffic_hs () in
  (* Three destinations keep the fat-tree case fast while still
     exercising distinct sweep shapes. *)
  List.iteri
    (fun i dst ->
      if i < 3 then begin
        let seq = Rvaas.Verifier.sources_reaching ~flows_of topo ~dst ~hs in
        let par =
          Rvaas.Verifier.sources_reaching ~pool:(Lazy.force pool4) ~flows_of topo
            ~dst ~hs
        in
        check
          Alcotest.(list string)
          "parallel = sequential" (endpoints_fingerprint seq)
          (endpoints_fingerprint par)
      end)
    (Rvaas.Verifier.access_points topo)

(* ---- Service isolation query: parallel = sequential ---- *)

let query_point s =
  let topo = Netsim.Net.topology s.Workload.Scenario.net in
  let att = Option.get (Netsim.Topology.host_attachment topo 0) in
  match att.Netsim.Topology.node with
  | Netsim.Topology.Switch sw -> (sw, att.Netsim.Topology.port)
  | _ -> assert false

let evaluate_isolation s =
  let sw, port = query_point s in
  Rvaas.Service.evaluate s.Workload.Scenario.service ~client:0 ~sw ~port
    (Rvaas.Query.make Rvaas.Query.Isolation)

let probes_fingerprint probes =
  List.map
    (fun (ep : Rvaas.Verifier.endpoint) -> Printf.sprintf "%d/%d/%d" ep.host ep.sw ep.port)
    probes

let test_service_isolation_equal () =
  let s = build (Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4) in
  let cache = Rvaas.Service.reach_cache s.service in
  Rvaas.Service.set_pool s.service (Support.Pool.create 1);
  Rvaas.Reach_cache.invalidate cache;
  let answer_seq, probes_seq = evaluate_isolation s in
  Rvaas.Service.set_pool s.service (Lazy.force pool4);
  Rvaas.Reach_cache.invalidate cache;
  let answer_par, probes_par = evaluate_isolation s in
  check
    Alcotest.(list string)
    "probe list identical" (probes_fingerprint probes_seq)
    (probes_fingerprint probes_par);
  check Alcotest.int "same endpoint count"
    (List.length answer_seq.Rvaas.Query.endpoints)
    (List.length answer_par.Rvaas.Query.endpoints)

(* ---- Result cache: hits on repeats, never masks an attack ---- *)

let test_cache_attack_detected () =
  let s = build (Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4) in
  let cache = Rvaas.Service.reach_cache s.service in
  let stats = Rvaas.Reach_cache.stats cache in
  let _, before = evaluate_isolation s in
  let hits0 = stats.Rvaas.Reach_cache.hits in
  let _, warm = evaluate_isolation s in
  check
    Alcotest.(list string)
    "warm answer identical" (probes_fingerprint before) (probes_fingerprint warm);
  check Alcotest.bool "repeat query served from cache" true
    (stats.Rvaas.Reach_cache.hits > hits0);
  (* The attacker (client 1's host) injects Flow-Mods joining client
     0's isolation domain.  The monitor's snapshot-change hook must
     evict the cached results that traversed the modified switch so
     the next evaluation sees the new rules. *)
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  check Alcotest.bool "snapshot change evicted stale entries" true
    (stats.Rvaas.Reach_cache.delta_evictions > 0);
  let _, after = evaluate_isolation s in
  let before_fp = probes_fingerprint before in
  check Alcotest.bool "attacker's access point surfaces despite caching" true
    (List.exists (fun p -> not (List.mem p before_fp)) (probes_fingerprint after))

(* ---- Federation fan-out: parallel = sequential ---- *)

let test_federation_parallel_equal () =
  let switches = 9 in
  let topo = Workload.Topogen.linear Workload.Topogen.default_params switches in
  let s = build ~clients:1 ~isolation:false topo in
  let rng = Support.Rng.create 5 in
  let domains =
    List.init 3 (fun d ->
        let name = Printf.sprintf "provider-%d" d in
        {
          Rvaas.Federation.name;
          member = (fun sw -> sw >= 3 * d && sw < 3 * (d + 1));
          flows_of = Workload.Scenario.actual_flows s;
          geo = s.geo_truth;
          keypair = Cryptosim.Keys.generate rng ~owner:name;
        })
  in
  let fed = Rvaas.Federation.create topo domains in
  let hs = Rvaas.Verifier.ip_traffic_hs () in
  let run pool : Rvaas.Federation.result =
    Rvaas.Federation.reach ?pool fed ~start_domain:"provider-0" ~src_sw:0
      ~src_port:0 ~hs
  in
  let seq = run None in
  let par = run (Some (Lazy.force pool4)) in
  check
    Alcotest.(list string)
    "endpoints" (endpoints_fingerprint seq.endpoints)
    (endpoints_fingerprint par.endpoints);
  check Alcotest.(list string) "jurisdictions" seq.jurisdictions par.jurisdictions;
  check
    Alcotest.(list string)
    "domains traversed" seq.domains_traversed par.domains_traversed;
  check Alcotest.int "sub-queries" seq.sub_queries par.sub_queries;
  check
    Alcotest.(list string)
    "untrusted" seq.untrusted_domains par.untrusted_domains;
  check Alcotest.bool "query actually crossed domains" true (seq.sub_queries > 0)

let () =
  let p = Workload.Topogen.default_params in
  Alcotest.run "parallel"
    [
      ( "verifier",
        [
          Alcotest.test_case "sources_reaching grid-3x3" `Quick
            (test_sources_reaching_equal (Workload.Topogen.grid p ~rows:3 ~cols:3));
          Alcotest.test_case "sources_reaching fat-tree-k4" `Quick
            (test_sources_reaching_equal (Workload.Topogen.fat_tree p ~k:4));
        ] );
      ( "service",
        [
          Alcotest.test_case "isolation parallel = sequential" `Quick
            test_service_isolation_equal;
          Alcotest.test_case "cache never masks an attack" `Quick
            test_cache_attack_detected;
        ] );
      ( "federation",
        [
          Alcotest.test_case "parallel = sequential" `Quick
            test_federation_parallel_equal;
        ] );
    ]
