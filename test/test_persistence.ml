(* Durable persistence crash matrix.

   Layers under test: the on-disk journal backend
   ([Support.Journal_file]) against arbitrary truncation/corruption of
   the image and fsync-boundary kills, and journal compaction
   ([Support.Journal.compact] / [Rvaas.Journal.compact]) for
   recovery-equivalence, bounded growth and crash-mid-rewrite safety.
   Every file-layer property is checked against the in-memory
   [valid_prefix] oracle: whatever the file gives back must be a
   verified prefix of what was appended. *)

let check = Alcotest.check

let entry_equal (a : Support.Journal.entry) (b : Support.Journal.entry) =
  a.gen = b.gen && a.seq = b.seq
  && Float.equal a.at b.at
  && String.equal a.tag b.tag
  && String.equal a.payload b.payload
  && Int64.equal a.checksum b.checksum

let is_prefix_of got orig =
  List.length got <= List.length orig
  && List.for_all2 entry_equal got (List.filteri (fun i _ -> i < List.length got) orig)

let with_tmp_file f =
  let path = Filename.temp_file "rvaas_persistence" ".rvjl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- a random monitored life, as typed journal records ---- *)

type op =
  | Obs of int * int (* switch, ip-dst value *)
  | Open of int (* opens a fresh query *)
  | Close of int (* closes the (k mod opened)-th query, if any *)
  | Hb

let gen_op =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun sw v -> Obs (sw, v)) (int_bound 3) (int_bound 255));
        (1, map (fun k -> Open k) (int_bound 1000));
        (1, map (fun k -> Close k) (int_bound 1000));
        (2, return Hb);
      ])

let gen_ops = QCheck2.Gen.(list_size (int_range 5 120) gen_op)

let sample_spec v =
  Ofproto.Flow_entry.make_spec ~cookie:7 ~priority:(1 + (v mod 100))
    (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst v)
    [ Ofproto.Action.Output 1 ]

let query_open nonce =
  {
    Rvaas.Journal.q_nonce = nonce;
    q_client = 0;
    q_sw = 1;
    q_port = 0;
    q_ip = Some 0xa000001;
    q_query = Rvaas.Query.make Rvaas.Query.Isolation;
  }

(* Apply [ops] to a fresh typed journal (and its live snapshot),
   calling [each] after every op.  Returns (journal, snapshot). *)
let apply_ops ?(checkpoint_every = 4) ?(auto_compact = false)
    ?(each = fun _ -> ()) ops =
  let j = Rvaas.Journal.create ~checkpoint_every ~auto_compact () in
  let snap = Rvaas.Snapshot.create () in
  let at = ref 0.0 in
  let opened = ref 0 in
  List.iter
    (fun op ->
      at := !at +. 0.01;
      (match op with
      | Obs (sw, v) ->
        let ev = Ofproto.Message.Flow_added (sample_spec v) in
        Rvaas.Snapshot.apply_event snap ~sw ~now:!at ev;
        Rvaas.Journal.append j ~at:!at ~snapshot:snap
          (Rvaas.Journal.Observation { sw; event = ev })
      | Open _ ->
        incr opened;
        Rvaas.Journal.append j ~at:!at ~snapshot:snap
          (Rvaas.Journal.Query_opened (query_open (Printf.sprintf "q%d" !opened)))
      | Close k ->
        if !opened > 0 then
          Rvaas.Journal.append j ~at:!at ~snapshot:snap
            (Rvaas.Journal.Query_closed
               { nonce = Printf.sprintf "q%d" (1 + (k mod !opened)) })
      | Hb -> Rvaas.Journal.heartbeat j ~at:!at);
      each j)
    ops;
  (j, snap)

let open_nonces (r : Rvaas.Journal.recovery) =
  List.map (fun q -> q.Rvaas.Journal.q_nonce) r.open_queries

(* ---- file backend: round-trip and incremental appends ---- *)

let test_file_roundtrip () =
  with_tmp_file (fun path ->
      let j, snap =
        apply_ops
          (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) gen_ops)
      in
      let log = Rvaas.Journal.log j in
      (* Attach mid-life: the backend writes the current image, then
         mirrors later appends incrementally. *)
      let file = Support.Journal_file.attach log ~path in
      let before = Support.Journal_file.written_bytes file in
      Rvaas.Journal.heartbeat j ~at:99.0;
      Rvaas.Journal.checkpoint j ~at:99.1 ~snapshot:snap;
      check Alcotest.bool "appends mirrored incrementally" true
        (Support.Journal_file.written_bytes file > before);
      check Alcotest.int "checkpoint fsynced everything"
        (Support.Journal_file.written_bytes file)
        (Support.Journal_file.synced_bytes file);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "recover_from_file: %s" e
      | Ok log' ->
        check Alcotest.bool "file recovers every entry" true
          (List.length (Support.Journal.entries log')
          = List.length (Support.Journal.entries log));
        List.iter2
          (fun a b -> check Alcotest.bool "entry preserved" true (entry_equal a b))
          (Support.Journal.entries log)
          (Support.Journal.entries log');
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity through the file" true
          (Rvaas.Snapshot.digest_vector snap
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot);
        Support.Journal_file.close file)

(* Truncate the on-disk image at an arbitrary byte offset: recovery
   must return a verified prefix of the in-memory oracle — and the
   whole journal when the cut is past the written bytes. *)
let prop_file_truncation =
  QCheck2.Test.make ~count:60
    ~name:"file image truncated at any offset recovers the verified prefix"
    QCheck2.Gen.(pair gen_ops (int_bound 1_000_000))
    (fun (ops, cut_raw) ->
      with_tmp_file (fun path ->
          let j, _ = apply_ops ops in
          let log = Rvaas.Journal.log j in
          let file = Support.Journal_file.attach log ~path in
          Support.Journal_file.close file;
          let img = read_file path in
          let cut = cut_raw mod (String.length img + 1) in
          write_file path (String.sub img 0 cut);
          let oracle = Support.Journal.valid_prefix log in
          match Support.Journal_file.recover_from_file path with
          | Error _ -> cut < 5 (* only a cut inside the magic may fail *)
          | Ok log' ->
            let got = Support.Journal.entries log' in
            Support.Journal.verify log'
            && is_prefix_of got oracle
            && (cut < String.length img || List.length got = List.length oracle)))

(* Flip one bit anywhere in the image: recovery must never return
   anything that is not a verified prefix of what was written. *)
let prop_file_bitflip =
  QCheck2.Test.make ~count:60
    ~name:"file image with any bit flipped recovers a verified prefix"
    QCheck2.Gen.(triple gen_ops (int_bound 1_000_000) (int_bound 7))
    (fun (ops, pos_raw, bit) ->
      with_tmp_file (fun path ->
          let j, _ = apply_ops ops in
          let log = Rvaas.Journal.log j in
          let file = Support.Journal_file.attach log ~path in
          Support.Journal_file.close file;
          let img = Bytes.of_string (read_file path) in
          let pos = pos_raw mod Bytes.length img in
          Bytes.set img pos
            (Char.chr (Char.code (Bytes.get img pos) lxor (1 lsl bit)));
          write_file path (Bytes.to_string img);
          let oracle = Support.Journal.valid_prefix log in
          match Support.Journal_file.recover_from_file path with
          | Error _ -> pos < 5 (* only magic corruption may hard-fail *)
          | Ok log' ->
            Support.Journal.verify log'
            && is_prefix_of (Support.Journal.entries log') oracle))

(* Kill between append and checkpoint: anything at or past the last
   fsync must recover at least the synced prefix (the checkpoint
   included); the unsynced tail may tear anywhere. *)
let test_fsync_boundary () =
  with_tmp_file (fun path ->
      let j = Rvaas.Journal.create ~checkpoint_every:4 () in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let snap = Rvaas.Snapshot.create () in
      let observe i =
        let ev = Ofproto.Message.Flow_added (sample_spec i) in
        Rvaas.Snapshot.apply_event snap ~sw:0 ~now:(0.01 *. float_of_int i) ev;
        Rvaas.Journal.append j ~at:(0.01 *. float_of_int i) ~snapshot:snap
          (Rvaas.Journal.Observation { sw = 0; event = ev })
      in
      (* 4 observations trigger the cadence checkpoint, which fsyncs. *)
      for i = 1 to 4 do
        observe i
      done;
      let synced = Support.Journal_file.synced_bytes file in
      let count_at_sync = Support.Journal.length log in
      check Alcotest.int "cadence checkpoint landed" 5 count_at_sync;
      (* Unsynced tail: two more observations, no checkpoint. *)
      observe 5;
      observe 6;
      check Alcotest.bool "tail is written but not fsynced" true
        (Support.Journal_file.written_bytes file > synced);
      let img = read_file path in
      check Alcotest.int "file holds every written byte"
        (Support.Journal_file.written_bytes file)
        (String.length img);
      (* Simulate the kill: every surviving length from the fsync
         boundary up to the full file must recover the synced prefix
         (checkpoint included) — possibly more, never less. *)
      for cut = synced to String.length img do
        write_file path (String.sub img 0 cut);
        match Support.Journal_file.recover_from_file path with
        | Error e -> Alcotest.failf "cut at %d failed: %s" cut e
        | Ok log' ->
          if Support.Journal.length log' < count_at_sync then
            Alcotest.failf "cut at %d lost fsynced entries: %d < %d" cut
              (Support.Journal.length log') count_at_sync;
          if not (Support.Journal.verify log') then
            Alcotest.failf "cut at %d recovered an unverified log" cut
      done;
      (* At exactly the fsync boundary the last record is the
         checkpoint image itself. *)
      write_file path (String.sub img 0 synced);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "boundary cut: %s" e
      | Ok log' -> (
        let entries = Support.Journal.entries log' in
        check Alcotest.int "synced prefix exactly" count_at_sync
          (List.length entries);
        match Rvaas.Journal.decode_entry (List.nth entries (count_at_sync - 1)) with
        | Ok (Rvaas.Journal.Checkpoint _) -> ()
        | _ -> Alcotest.fail "fsync boundary is not a checkpoint record"))

(* ---- compaction ---- *)

(* recover (compact j) = recover j: same snapshot (full digest
   vector), same open queries in the same order, same generation —
   and the journal still verifies with fewer (or equal) entries. *)
let prop_compaction_equivalence =
  QCheck2.Test.make ~count:60 ~name:"compaction preserves recovery exactly"
    gen_ops
    (fun ops ->
      let j, snap = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let before = Rvaas.Journal.recover log in
      let len_before = Support.Journal.length log in
      Rvaas.Journal.compact j ~at:1000.0;
      let after = Rvaas.Journal.recover log in
      Support.Journal.verify log
      && Support.Journal.length log <= len_before + 1
      && Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
         = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot
      && Rvaas.Snapshot.digest_vector snap
         = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot
      && open_nonces before = open_nonces after
      && before.Rvaas.Journal.generation = after.Rvaas.Journal.generation)

(* Compaction composes with the file backend: the image is rewritten
   in place (temp + rename) and recovery from the rewritten file
   matches recovery from memory. *)
let test_compaction_file_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 11 |])
          QCheck2.Gen.(list_repeat 80 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let bytes_before = (Unix.stat path).Unix.st_size in
      let before = Rvaas.Journal.recover log in
      Rvaas.Journal.compact j ~at:1000.0;
      let bytes_after = (Unix.stat path).Unix.st_size in
      check Alcotest.bool "image shrank on disk" true (bytes_after < bytes_before);
      check Alcotest.bool "no temp file left behind" false
        (Sys.file_exists (Support.Journal_file.temp_path file));
      (match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "rewritten image: %s" e
      | Ok log' ->
        let after = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity through the rewrite" true
          (Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
          = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot);
        check
          (Alcotest.list Alcotest.string)
          "open queries preserved through the rewrite" (open_nonces before)
          (open_nonces after));
      (* The backend stays attached and appendable after the rename. *)
      Rvaas.Journal.heartbeat j ~at:1001.0;
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "post-rewrite append: %s" e
      | Ok log' ->
        check Alcotest.int "post-rewrite append recovered"
          (Support.Journal.length log)
          (Support.Journal.length log'))

(* Every atomic image rewrite must also fsync the containing
   directory: fsyncing the renamed file persists its contents, not the
   directory entry, so without the barrier a power cut after the
   rename can resurrect the old image.  The counter proves the barrier
   ran exactly once per rewrite — and never on plain appends. *)
let test_dir_fsync_on_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 17 |])
          QCheck2.Gen.(list_repeat 40 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      check Alcotest.int "attach image fsynced its directory" 1
        (Support.Journal_file.dir_syncs file);
      Rvaas.Journal.heartbeat j ~at:500.0;
      check Alcotest.int "plain appends do not touch the directory" 1
        (Support.Journal_file.dir_syncs file);
      Rvaas.Journal.compact j ~at:1000.0;
      check Alcotest.int "compaction rewrite fsynced the directory" 2
        (Support.Journal_file.dir_syncs file);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "image after directory fsync: %s" e
      | Ok log' ->
        check Alcotest.int "image still recovers fully"
          (Support.Journal.length log)
          (Support.Journal.length log'))

(* A crash between writing the temp image and the rename leaves the
   old image at [path] and a partial [path].tmp: recovery must ignore
   the temp and return the pre-compaction state. *)
let test_crash_mid_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 13 |])
          QCheck2.Gen.(list_repeat 60 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let before = Rvaas.Journal.recover log in
      let old_image = read_file path in
      (* The kill: a torn temp image next to the intact old one. *)
      write_file
        (Support.Journal_file.temp_path file)
        (String.sub old_image 0 (String.length old_image / 3));
      (match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "old image unreadable: %s" e
      | Ok log' ->
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "pre-compaction state recovered" true
          (Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot));
      (* A fresh attach over the same path (the restarted process)
         replaces both the image and the stale temp. *)
      let j2 = Rvaas.Journal.of_log ~checkpoint_every:4 log in
      Support.Journal.detach log;
      let file2 = Support.Journal_file.attach log ~path in
      Rvaas.Journal.heartbeat j2 ~at:2000.0;
      check Alcotest.bool "stale temp replaced by the new attach" false
        (Sys.file_exists (Support.Journal_file.temp_path file2)))

(* With auto-compaction the journal never exceeds 2 x checkpoint_every
   entries, at any point of any workload — except that open queries
   are irreducible (compaction must carry every one of them forward),
   so the bound is [max (2 * ce) (open_queries + 1)]. *)
let prop_bounded_growth =
  QCheck2.Test.make ~count:40
    ~name:"auto-compacted journal stays within 2 x checkpoint_every" gen_ops
    (fun ops ->
      let ce = 4 in
      let ok = ref true in
      let bound j =
        let log = Rvaas.Journal.log j in
        let opens =
          List.length (Rvaas.Journal.recover log).Rvaas.Journal.open_queries
        in
        max (2 * ce) (opens + 1)
      in
      let j, _ =
        apply_ops ~checkpoint_every:ce ~auto_compact:true
          ~each:(fun j ->
            if Support.Journal.length (Rvaas.Journal.log j) > bound j then
              ok := false)
          ops
      in
      let log = Rvaas.Journal.log j in
      !ok
      && Support.Journal.length log <= bound j
      && Support.Journal.verify log)

(* Compacting must not break the generation audit trail: a takeover
   after compaction still recovers and numbers generations correctly. *)
let test_compaction_preserves_generations () =
  let ops =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 17 |])
      QCheck2.Gen.(list_repeat 40 gen_op)
  in
  let j, snap = apply_ops ops in
  let log = Rvaas.Journal.log j in
  ignore (Support.Journal.begin_generation log ~at:500.0);
  Rvaas.Journal.checkpoint j ~at:500.1 ~snapshot:snap;
  Rvaas.Journal.compact j ~at:501.0;
  check Alcotest.int "generation survives compaction" 2
    (Support.Journal.generation log);
  let r = Rvaas.Journal.recover log in
  check Alcotest.int "recovery sees generation 2" 2 r.Rvaas.Journal.generation;
  check Alcotest.bool "base sequence advanced" true
    (Support.Journal.base_seq log > 0);
  (* And the compacted journal still round-trips through the codec. *)
  match Support.Journal.decode (Support.Journal.encode log) with
  | Error e -> Alcotest.failf "compacted image: %s" e
  | Ok log' ->
    check Alcotest.int "compacted image round-trips"
      (Support.Journal.length log)
      (Support.Journal.length log');
    check Alcotest.int "decoded generation" 2 (Support.Journal.generation log')

(* ---- end to end: a live HA deployment journaling to disk ---- *)

let test_scenario_file_recovery () =
  with_tmp_file (fun path ->
      let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
      let s =
        Workload.Scenario.build
          {
            (Workload.Scenario.default_spec topo) with
            polling = Rvaas.Monitor.Periodic 0.02;
            ha =
              Some
                {
                  Rvaas.Failover.default_config with
                  checkpoint_every = 16;
                  auto_compact = true;
                };
          }
      in
      let ctrl = Workload.Scenario.controller s in
      let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
      let file = Support.Journal_file.attach log ~path in
      Workload.Scenario.run s ~until:0.6;
      check Alcotest.bool "auto-compaction bounded the live journal" true
        (Support.Journal.length log <= 32);
      let live = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "live file recovery: %s" e
      | Ok log' ->
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "recovered digest vector equals the live one" true
          (Rvaas.Snapshot.digest_vector live
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot);
        Support.Journal_file.close file)

let () =
  Alcotest.run "persistence"
    [
      ( "file-backend",
        [
          Alcotest.test_case "attach, append, recover round-trip" `Quick
            test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_file_truncation;
          QCheck_alcotest.to_alcotest prop_file_bitflip;
          Alcotest.test_case "fsync boundary survives the kill" `Quick
            test_fsync_boundary;
        ] );
      ( "compaction",
        [
          QCheck_alcotest.to_alcotest prop_compaction_equivalence;
          QCheck_alcotest.to_alcotest prop_bounded_growth;
          Alcotest.test_case "file image rewritten atomically" `Quick
            test_compaction_file_rewrite;
          Alcotest.test_case "rewrite fsyncs the containing directory" `Quick
            test_dir_fsync_on_rewrite;
          Alcotest.test_case "crash mid-rewrite keeps the old image" `Quick
            test_crash_mid_rewrite;
          Alcotest.test_case "generation audit trail preserved" `Quick
            test_compaction_preserves_generations;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "live deployment journal recovers from disk" `Quick
            test_scenario_file_recovery;
        ] );
    ]
