(* Durable persistence crash matrix.

   Layers under test: the on-disk journal backend
   ([Support.Journal_file]) against arbitrary truncation/corruption of
   the image and fsync-boundary kills, and journal compaction
   ([Support.Journal.compact] / [Rvaas.Journal.compact]) for
   recovery-equivalence, bounded growth and crash-mid-rewrite safety.
   Every file-layer property is checked against the in-memory
   [valid_prefix] oracle: whatever the file gives back must be a
   verified prefix of what was appended. *)

let check = Alcotest.check

let entry_equal (a : Support.Journal.entry) (b : Support.Journal.entry) =
  a.gen = b.gen && a.seq = b.seq
  && Float.equal a.at b.at
  && String.equal a.tag b.tag
  && String.equal a.payload b.payload
  && Int64.equal a.checksum b.checksum

let is_prefix_of got orig =
  List.length got <= List.length orig
  && List.for_all2 entry_equal got (List.filteri (fun i _ -> i < List.length got) orig)

let with_tmp_file f =
  let path = Filename.temp_file "rvaas_persistence" ".rvjl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ---- a random monitored life, as typed journal records ---- *)

type op =
  | Obs of int * int (* switch, ip-dst value *)
  | Open of int (* opens a fresh query *)
  | Close of int (* closes the (k mod opened)-th query, if any *)
  | Hb

let gen_op =
  QCheck2.Gen.(
    frequency
      [
        (6, map2 (fun sw v -> Obs (sw, v)) (int_bound 3) (int_bound 255));
        (1, map (fun k -> Open k) (int_bound 1000));
        (1, map (fun k -> Close k) (int_bound 1000));
        (2, return Hb);
      ])

let gen_ops = QCheck2.Gen.(list_size (int_range 5 120) gen_op)

let sample_spec v =
  Ofproto.Flow_entry.make_spec ~cookie:7 ~priority:(1 + (v mod 100))
    (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst v)
    [ Ofproto.Action.Output 1 ]

let query_open nonce =
  {
    Rvaas.Journal.q_nonce = nonce;
    q_client = 0;
    q_sw = 1;
    q_port = 0;
    q_ip = Some 0xa000001;
    q_query = Rvaas.Query.make Rvaas.Query.Isolation;
  }

(* Apply [ops] to a fresh typed journal (and its live snapshot),
   calling [each] after every op.  Returns (journal, snapshot). *)
let apply_ops ?(checkpoint_every = 4) ?(auto_compact = false)
    ?(each = fun _ -> ()) ops =
  let j = Rvaas.Journal.create ~checkpoint_every ~auto_compact () in
  let snap = Rvaas.Snapshot.create () in
  let at = ref 0.0 in
  let opened = ref 0 in
  List.iter
    (fun op ->
      at := !at +. 0.01;
      (match op with
      | Obs (sw, v) ->
        let ev = Ofproto.Message.Flow_added (sample_spec v) in
        Rvaas.Snapshot.apply_event snap ~sw ~now:!at ev;
        Rvaas.Journal.append j ~at:!at ~snapshot:snap
          (Rvaas.Journal.Observation { sw; event = ev })
      | Open _ ->
        incr opened;
        Rvaas.Journal.append j ~at:!at ~snapshot:snap
          (Rvaas.Journal.Query_opened (query_open (Printf.sprintf "q%d" !opened)))
      | Close k ->
        if !opened > 0 then
          Rvaas.Journal.append j ~at:!at ~snapshot:snap
            (Rvaas.Journal.Query_closed
               { nonce = Printf.sprintf "q%d" (1 + (k mod !opened)) })
      | Hb -> Rvaas.Journal.heartbeat j ~at:!at);
      each j)
    ops;
  (j, snap)

let open_nonces (r : Rvaas.Journal.recovery) =
  List.map (fun q -> q.Rvaas.Journal.q_nonce) r.open_queries

(* ---- file backend: round-trip and incremental appends ---- *)

let test_file_roundtrip () =
  with_tmp_file (fun path ->
      let j, snap =
        apply_ops
          (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) gen_ops)
      in
      let log = Rvaas.Journal.log j in
      (* Attach mid-life: the backend writes the current image, then
         mirrors later appends incrementally. *)
      let file = Support.Journal_file.attach log ~path in
      let before = Support.Journal_file.written_bytes file in
      Rvaas.Journal.heartbeat j ~at:99.0;
      Rvaas.Journal.checkpoint j ~at:99.1 ~snapshot:snap;
      check Alcotest.bool "appends mirrored incrementally" true
        (Support.Journal_file.written_bytes file > before);
      check Alcotest.int "checkpoint fsynced everything"
        (Support.Journal_file.written_bytes file)
        (Support.Journal_file.synced_bytes file);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "recover_from_file: %s" e
      | Ok log' ->
        check Alcotest.bool "file recovers every entry" true
          (List.length (Support.Journal.entries log')
          = List.length (Support.Journal.entries log));
        List.iter2
          (fun a b -> check Alcotest.bool "entry preserved" true (entry_equal a b))
          (Support.Journal.entries log)
          (Support.Journal.entries log');
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity through the file" true
          (Rvaas.Snapshot.digest_vector snap
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot);
        Support.Journal_file.close file)

(* Truncate the on-disk image at an arbitrary byte offset: recovery
   must return a verified prefix of the in-memory oracle — and the
   whole journal when the cut is past the written bytes. *)
let prop_file_truncation =
  QCheck2.Test.make ~count:60
    ~name:"file image truncated at any offset recovers the verified prefix"
    QCheck2.Gen.(pair gen_ops (int_bound 1_000_000))
    (fun (ops, cut_raw) ->
      with_tmp_file (fun path ->
          let j, _ = apply_ops ops in
          let log = Rvaas.Journal.log j in
          let file = Support.Journal_file.attach log ~path in
          Support.Journal_file.close file;
          let img = read_file path in
          let cut = cut_raw mod (String.length img + 1) in
          write_file path (String.sub img 0 cut);
          let oracle = Support.Journal.valid_prefix log in
          match Support.Journal_file.recover_from_file path with
          | Error _ -> cut < 5 (* only a cut inside the magic may fail *)
          | Ok log' ->
            let got = Support.Journal.entries log' in
            Support.Journal.verify log'
            && is_prefix_of got oracle
            && (cut < String.length img || List.length got = List.length oracle)))

(* Flip one bit anywhere in the image: recovery must never return
   anything that is not a verified prefix of what was written. *)
let prop_file_bitflip =
  QCheck2.Test.make ~count:60
    ~name:"file image with any bit flipped recovers a verified prefix"
    QCheck2.Gen.(triple gen_ops (int_bound 1_000_000) (int_bound 7))
    (fun (ops, pos_raw, bit) ->
      with_tmp_file (fun path ->
          let j, _ = apply_ops ops in
          let log = Rvaas.Journal.log j in
          let file = Support.Journal_file.attach log ~path in
          Support.Journal_file.close file;
          let img = Bytes.of_string (read_file path) in
          let pos = pos_raw mod Bytes.length img in
          Bytes.set img pos
            (Char.chr (Char.code (Bytes.get img pos) lxor (1 lsl bit)));
          write_file path (Bytes.to_string img);
          let oracle = Support.Journal.valid_prefix log in
          match Support.Journal_file.recover_from_file path with
          | Error _ -> pos < 5 (* only magic corruption may hard-fail *)
          | Ok log' ->
            Support.Journal.verify log'
            && is_prefix_of (Support.Journal.entries log') oracle))

(* Kill between append and checkpoint: anything at or past the last
   fsync must recover at least the synced prefix (the checkpoint
   included); the unsynced tail may tear anywhere. *)
let test_fsync_boundary () =
  with_tmp_file (fun path ->
      let j = Rvaas.Journal.create ~checkpoint_every:4 () in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let snap = Rvaas.Snapshot.create () in
      let observe i =
        let ev = Ofproto.Message.Flow_added (sample_spec i) in
        Rvaas.Snapshot.apply_event snap ~sw:0 ~now:(0.01 *. float_of_int i) ev;
        Rvaas.Journal.append j ~at:(0.01 *. float_of_int i) ~snapshot:snap
          (Rvaas.Journal.Observation { sw = 0; event = ev })
      in
      (* 4 observations trigger the cadence checkpoint, which fsyncs. *)
      for i = 1 to 4 do
        observe i
      done;
      let synced = Support.Journal_file.synced_bytes file in
      let count_at_sync = Support.Journal.length log in
      check Alcotest.int "cadence checkpoint landed" 5 count_at_sync;
      (* Unsynced tail: two more observations, no checkpoint. *)
      observe 5;
      observe 6;
      check Alcotest.bool "tail is written but not fsynced" true
        (Support.Journal_file.written_bytes file > synced);
      let img = read_file path in
      check Alcotest.int "file holds every written byte"
        (Support.Journal_file.written_bytes file)
        (String.length img);
      (* Simulate the kill: every surviving length from the fsync
         boundary up to the full file must recover the synced prefix
         (checkpoint included) — possibly more, never less. *)
      for cut = synced to String.length img do
        write_file path (String.sub img 0 cut);
        match Support.Journal_file.recover_from_file path with
        | Error e -> Alcotest.failf "cut at %d failed: %s" cut e
        | Ok log' ->
          if Support.Journal.length log' < count_at_sync then
            Alcotest.failf "cut at %d lost fsynced entries: %d < %d" cut
              (Support.Journal.length log') count_at_sync;
          if not (Support.Journal.verify log') then
            Alcotest.failf "cut at %d recovered an unverified log" cut
      done;
      (* At exactly the fsync boundary the last record is the
         checkpoint image itself. *)
      write_file path (String.sub img 0 synced);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "boundary cut: %s" e
      | Ok log' -> (
        let entries = Support.Journal.entries log' in
        check Alcotest.int "synced prefix exactly" count_at_sync
          (List.length entries);
        match Rvaas.Journal.decode_entry (List.nth entries (count_at_sync - 1)) with
        | Ok (Rvaas.Journal.Checkpoint _) -> ()
        | _ -> Alcotest.fail "fsync boundary is not a checkpoint record"))

(* ---- compaction ---- *)

(* recover (compact j) = recover j: same snapshot (full digest
   vector), same open queries in the same order, same generation —
   and the journal still verifies with fewer (or equal) entries. *)
let prop_compaction_equivalence =
  QCheck2.Test.make ~count:60 ~name:"compaction preserves recovery exactly"
    gen_ops
    (fun ops ->
      let j, snap = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let before = Rvaas.Journal.recover log in
      let len_before = Support.Journal.length log in
      Rvaas.Journal.compact j ~at:1000.0;
      let after = Rvaas.Journal.recover log in
      Support.Journal.verify log
      && Support.Journal.length log <= len_before + 1
      && Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
         = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot
      && Rvaas.Snapshot.digest_vector snap
         = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot
      && open_nonces before = open_nonces after
      && before.Rvaas.Journal.generation = after.Rvaas.Journal.generation)

(* Compaction composes with the file backend: the image is rewritten
   in place (temp + rename) and recovery from the rewritten file
   matches recovery from memory. *)
let test_compaction_file_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 11 |])
          QCheck2.Gen.(list_repeat 80 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let bytes_before = (Unix.stat path).Unix.st_size in
      let before = Rvaas.Journal.recover log in
      Rvaas.Journal.compact j ~at:1000.0;
      let bytes_after = (Unix.stat path).Unix.st_size in
      check Alcotest.bool "image shrank on disk" true (bytes_after < bytes_before);
      check Alcotest.bool "no temp file left behind" false
        (Sys.file_exists (Support.Journal_file.temp_path file));
      (match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "rewritten image: %s" e
      | Ok log' ->
        let after = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity through the rewrite" true
          (Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
          = Rvaas.Snapshot.digest_vector after.Rvaas.Journal.snapshot);
        check
          (Alcotest.list Alcotest.string)
          "open queries preserved through the rewrite" (open_nonces before)
          (open_nonces after));
      (* The backend stays attached and appendable after the rename. *)
      Rvaas.Journal.heartbeat j ~at:1001.0;
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "post-rewrite append: %s" e
      | Ok log' ->
        check Alcotest.int "post-rewrite append recovered"
          (Support.Journal.length log)
          (Support.Journal.length log'))

(* Every atomic image rewrite must also fsync the containing
   directory: fsyncing the renamed file persists its contents, not the
   directory entry, so without the barrier a power cut after the
   rename can resurrect the old image.  The counter proves the barrier
   ran exactly once per rewrite — and never on plain appends. *)
let test_dir_fsync_on_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 17 |])
          QCheck2.Gen.(list_repeat 40 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      check Alcotest.int "attach image fsynced its directory" 1
        (Support.Journal_file.dir_syncs file);
      Rvaas.Journal.heartbeat j ~at:500.0;
      check Alcotest.int "plain appends do not touch the directory" 1
        (Support.Journal_file.dir_syncs file);
      Rvaas.Journal.compact j ~at:1000.0;
      check Alcotest.int "compaction rewrite fsynced the directory" 2
        (Support.Journal_file.dir_syncs file);
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "image after directory fsync: %s" e
      | Ok log' ->
        check Alcotest.int "image still recovers fully"
          (Support.Journal.length log)
          (Support.Journal.length log'))

(* A crash between writing the temp image and the rename leaves the
   old image at [path] and a partial [path].tmp: recovery must ignore
   the temp and return the pre-compaction state. *)
let test_crash_mid_rewrite () =
  with_tmp_file (fun path ->
      let ops =
        QCheck2.Gen.generate1 ~rand:(Random.State.make [| 13 |])
          QCheck2.Gen.(list_repeat 60 gen_op)
      in
      let j, _ = apply_ops ops in
      let log = Rvaas.Journal.log j in
      let file = Support.Journal_file.attach log ~path in
      let before = Rvaas.Journal.recover log in
      let old_image = read_file path in
      (* The kill: a torn temp image next to the intact old one. *)
      write_file
        (Support.Journal_file.temp_path file)
        (String.sub old_image 0 (String.length old_image / 3));
      (match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "old image unreadable: %s" e
      | Ok log' ->
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "pre-compaction state recovered" true
          (Rvaas.Snapshot.digest_vector before.Rvaas.Journal.snapshot
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot));
      (* A fresh attach over the same path (the restarted process)
         replaces both the image and the stale temp. *)
      let j2 = Rvaas.Journal.of_log ~checkpoint_every:4 log in
      Support.Journal.detach log;
      let file2 = Support.Journal_file.attach log ~path in
      Rvaas.Journal.heartbeat j2 ~at:2000.0;
      check Alcotest.bool "stale temp replaced by the new attach" false
        (Sys.file_exists (Support.Journal_file.temp_path file2)))

(* With auto-compaction the journal never exceeds 2 x checkpoint_every
   entries, at any point of any workload — except that open queries
   are irreducible (compaction must carry every one of them forward),
   so the bound is [max (2 * ce) (open_queries + 1)]. *)
let prop_bounded_growth =
  QCheck2.Test.make ~count:40
    ~name:"auto-compacted journal stays within 2 x checkpoint_every" gen_ops
    (fun ops ->
      let ce = 4 in
      let ok = ref true in
      let bound j =
        let log = Rvaas.Journal.log j in
        let opens =
          List.length (Rvaas.Journal.recover log).Rvaas.Journal.open_queries
        in
        max (2 * ce) (opens + 1)
      in
      let j, _ =
        apply_ops ~checkpoint_every:ce ~auto_compact:true
          ~each:(fun j ->
            if Support.Journal.length (Rvaas.Journal.log j) > bound j then
              ok := false)
          ops
      in
      let log = Rvaas.Journal.log j in
      !ok
      && Support.Journal.length log <= bound j
      && Support.Journal.verify log)

(* Compacting must not break the generation audit trail: a takeover
   after compaction still recovers and numbers generations correctly. *)
let test_compaction_preserves_generations () =
  let ops =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 17 |])
      QCheck2.Gen.(list_repeat 40 gen_op)
  in
  let j, snap = apply_ops ops in
  let log = Rvaas.Journal.log j in
  ignore (Support.Journal.begin_generation log ~at:500.0);
  Rvaas.Journal.checkpoint j ~at:500.1 ~snapshot:snap;
  Rvaas.Journal.compact j ~at:501.0;
  check Alcotest.int "generation survives compaction" 2
    (Support.Journal.generation log);
  let r = Rvaas.Journal.recover log in
  check Alcotest.int "recovery sees generation 2" 2 r.Rvaas.Journal.generation;
  check Alcotest.bool "base sequence advanced" true
    (Support.Journal.base_seq log > 0);
  (* And the compacted journal still round-trips through the codec. *)
  match Support.Journal.decode (Support.Journal.encode log) with
  | Error e -> Alcotest.failf "compacted image: %s" e
  | Ok log' ->
    check Alcotest.int "compacted image round-trips"
      (Support.Journal.length log)
      (Support.Journal.length log');
    check Alcotest.int "decoded generation" 2 (Support.Journal.generation log')

(* ---- segmented store: seals, crash matrix, fault injection ---- *)

let with_tmp_dir f =
  let dir = Filename.temp_file "rvaas_segments" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir && Sys.is_directory dir then begin
        Array.iter
          (fun g -> try Sys.remove (Filename.concat dir g) with Sys_error _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let seg_config ?crypt segment_bytes = { Support.Segment_store.segment_bytes; crypt }

let seg_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".rvsg" || Filename.check_suffix f ".act")
  |> List.sort compare

let atrest_key = Cryptosim.Hmac.key_of_string "test-at-rest-key"

let atrest = Cryptosim.Atrest.crypt ~key:atrest_key

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.equal (String.sub hay i nn) needle || go (i + 1)) in
  nn = 0 || go 0

let test_segment_roundtrip () =
  with_tmp_dir (fun dir ->
      let j, snap =
        apply_ops
          (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 23 |])
             QCheck2.Gen.(list_repeat 80 gen_op))
      in
      let log = Rvaas.Journal.log j in
      let store = Support.Segment_store.attach ~config:(seg_config 512) log ~dir in
      check Alcotest.bool "threshold sealing kicked in" true
        (Support.Segment_store.sealed_count store >= 2);
      Rvaas.Journal.heartbeat j ~at:99.0;
      Rvaas.Journal.checkpoint j ~at:99.1 ~snapshot:snap;
      check Alcotest.int "checkpoint fsynced everything"
        (Support.Segment_store.written_bytes store)
        (Support.Segment_store.synced_bytes store);
      Support.Segment_store.close store;
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "recover_from_dir: %s" e
      | Ok log' ->
        check Alcotest.int "store recovers every entry"
          (List.length (Support.Journal.entries log))
          (List.length (Support.Journal.entries log'));
        List.iter2
          (fun a b -> check Alcotest.bool "entry preserved" true (entry_equal a b))
          (Support.Journal.entries log)
          (Support.Journal.entries log');
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity through the segments" true
          (Rvaas.Snapshot.digest_vector snap
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot))

(* A crashed rewrite (or any earlier tooling) can leave [*.tmp] litter
   and dead segments in the directory; attach must sweep both — and
   count the temps so operators can see the crash happened. *)
let test_attach_sweeps_stale_state () =
  with_tmp_dir (fun dir ->
      write_file (Filename.concat dir "journal.rvjl.tmp") "half-written temp";
      write_file (Filename.concat dir "seg-000099.rvsg") "segment from a previous life";
      let j, _ =
        apply_ops
          (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 29 |]) gen_ops)
      in
      let log = Rvaas.Journal.log j in
      let store = Support.Segment_store.attach log ~dir in
      check Alcotest.int "stale temp swept and counted" 1
        (Support.Segment_store.stale_temps_removed store);
      check Alcotest.bool "stale segments replaced" false
        (Sys.file_exists (Filename.concat dir "seg-000099.rvsg"));
      Support.Segment_store.close store;
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "fresh store: %s" e
      | Ok log' ->
        check Alcotest.int "fresh store recovers in full"
          (Support.Journal.length log)
          (Support.Journal.length log'))

(* Damage one arbitrary segment file — sealed or active, any position:
   recovery must return a verified prefix of the in-memory oracle.
   Only damage to the first segment (no prefix left to salvage) may
   hard-error; damage anywhere else must degrade gracefully, and in
   particular must never splice later segments over the gap. *)
let mk_damage_prop ~name ~crypt damage =
  QCheck2.Test.make ~count:40 ~name
    QCheck2.Gen.(triple gen_ops (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (ops, pick_raw, pos_raw) ->
      with_tmp_dir (fun dir ->
          let j, _ = apply_ops ops in
          let log = Rvaas.Journal.log j in
          let store =
            Support.Segment_store.attach ~config:(seg_config ?crypt 512) log ~dir
          in
          Support.Segment_store.close store;
          let files = seg_files dir in
          let victim = pick_raw mod List.length files in
          damage (Filename.concat dir (List.nth files victim)) pos_raw;
          let oracle = Support.Journal.valid_prefix log in
          match Support.Segment_store.recover_from_dir ?crypt dir with
          | Error _ -> victim = 0
          | Ok log' ->
            Support.Journal.verify log'
            && is_prefix_of (Support.Journal.entries log') oracle))

let truncate_file path pos_raw =
  let img = read_file path in
  write_file path (String.sub img 0 (pos_raw mod (String.length img + 1)))

let bitflip_file path pos_raw =
  let img = Bytes.of_string (read_file path) in
  let pos = pos_raw mod Bytes.length img in
  Bytes.set img pos
    (Char.chr (Char.code (Bytes.get img pos) lxor (1 lsl (pos_raw mod 8))));
  write_file path (Bytes.to_string img)

let prop_segment_truncation =
  mk_damage_prop ~crypt:None
    ~name:"any segment truncated at any offset recovers a verified prefix"
    truncate_file

let prop_segment_bitflip =
  mk_damage_prop ~crypt:None
    ~name:"any segment with any bit flipped recovers a verified prefix"
    bitflip_file

(* The seal protocol has three crash points: after the header patch
   but before the rename, mid-patch (sealed flag never landed), and a
   torn frame tail on top of either.  None may lose a verified
   entry — the first two lose nothing at all. *)
let test_crash_mid_seal () =
  with_tmp_dir (fun dir ->
      let j, snap =
        apply_ops
          (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 31 |])
             QCheck2.Gen.(list_repeat 60 gen_op))
      in
      let log = Rvaas.Journal.log j in
      let store = Support.Segment_store.attach ~config:(seg_config 512) log ~dir in
      Support.Segment_store.seal_active store;
      Support.Segment_store.close store;
      let full = Support.Journal.length log in
      (* Crash point 1: header finalized and fsynced, rename never ran
         — the newest sealed segment still carries its active name and
         the empty successor was never created. *)
      List.iter
        (fun f ->
          if Filename.check_suffix f ".act" then Sys.remove (Filename.concat dir f))
        (seg_files dir);
      let last_sealed =
        match List.rev (seg_files dir) with
        | f :: _ -> f
        | [] -> Alcotest.fail "no sealed segment"
      in
      let act_name = Filename.chop_suffix last_sealed ".rvsg" ^ ".act" in
      Sys.rename (Filename.concat dir last_sealed) (Filename.concat dir act_name);
      (match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "finalized-but-unrenamed: %s" e
      | Ok log' ->
        check Alcotest.int "crash after finalize loses nothing" full
          (Support.Journal.length log');
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "digest parity at the seal point" true
          (Rvaas.Snapshot.digest_vector snap
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot));
      (* Crash point 2: the flags byte never landed — the segment still
         reads as active, and its frames must all survive. *)
      let path = Filename.concat dir act_name in
      let img = Bytes.of_string (read_file path) in
      Bytes.set img 5 '\000';
      write_file path (Bytes.to_string img);
      (match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "unpatched flags: %s" e
      | Ok log' ->
        check Alcotest.int "crash mid-patch loses nothing" full
          (Support.Journal.length log'));
      (* Crash point 3: same segment with a torn frame tail — recovery
         drops the torn frame and keeps the verified prefix. *)
      write_file path (Bytes.sub_string img 0 (Bytes.length img - 7));
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "torn seal tail: %s" e
      | Ok log' ->
        let got = Support.Journal.entries log' in
        check Alcotest.bool "torn tail keeps a strictly shorter prefix" true
          (List.length got < full
          && is_prefix_of got (Support.Journal.valid_prefix log)))

(* Compaction unlinks dead sealed segments oldest-first, so a crash
   between unlinks leaves the deleted list's suffix on disk — every
   such state must recover to exactly the post-compaction state, and
   retained sealed segments must not have a single byte rewritten. *)
let is_suffix_of got full =
  let n = List.length got and m = List.length full in
  n <= m && List.for_all2 entry_equal got (List.filteri (fun i _ -> i >= m - n) full)

let test_crash_mid_compaction_unlink () =
  with_tmp_dir (fun dir ->
      let ops = List.init 70 (fun i -> Obs (i mod 4, i * 7 mod 256)) in
      let j, _ = apply_ops ~checkpoint_every:16 ops in
      let log = Rvaas.Journal.log j in
      let store = Support.Segment_store.attach ~config:(seg_config 512) log ~dir in
      let backup =
        List.map (fun f -> (f, read_file (Filename.concat dir f))) (seg_files dir)
      in
      let full = Support.Journal.entries log in
      let digest0 =
        Rvaas.Snapshot.digest_vector (Rvaas.Journal.recover log).Rvaas.Journal.snapshot
      in
      (* Rebase the chain mid-store — the primitive the typed layer's
         compaction drives — so segments below the cut die and the
         ones above must survive byte-identical. *)
      Support.Journal.compact log ~upto_seq:(Support.Journal.last_seq log - 20);
      let after_files = seg_files dir in
      let deleted = List.filter (fun (f, _) -> not (List.mem f after_files)) backup in
      let retained =
        List.filter (fun f -> List.mem_assoc f backup) after_files
      in
      check Alcotest.bool "compaction deleted whole sealed files" true
        (List.length deleted >= 2 && Support.Segment_store.sealed_deleted store >= 2);
      check Alcotest.bool "segments above the cut retained" true
        (List.exists (fun f -> Filename.check_suffix f ".rvsg") retained);
      List.iter
        (fun f ->
          check Alcotest.bool "retained segment bytes untouched" true
            (String.equal (read_file (Filename.concat dir f)) (List.assoc f backup)))
        retained;
      Support.Segment_store.close store;
      (* Every partial-unlink crash state: oldest-first deletion means a
         crash between unlinks leaves a suffix of the deleted list on
         disk.  Each state must recover a chain-contiguous suffix of
         the original journal and replay to the same digest vector. *)
      let check_state msg =
        match Support.Segment_store.recover_from_dir dir with
        | Error e -> Alcotest.failf "%s: %s" msg e
        | Ok log' ->
          let got = Support.Journal.entries log' in
          check Alcotest.bool (msg ^ ": contiguous suffix of the chain") true
            (got <> [] && is_suffix_of got full);
          check Alcotest.bool (msg ^ ": length covers the retained tail" ) true
            (List.length got >= 21);
          let r = Rvaas.Journal.recover log' in
          check Alcotest.bool (msg ^ ": digest parity") true
            (Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot = digest0)
      in
      check_state "all unlinks done";
      List.iteri
        (fun i (f, bytes) ->
          write_file (Filename.concat dir f) bytes;
          check_state (Printf.sprintf "unlink crash point %d (%s back)" i f))
        (List.rev deleted))

(* ---- injected faults: ENOSPC, short writes, failed fsyncs ---- *)

let seg_observe j snap i =
  let ev = Ofproto.Message.Flow_added (sample_spec i) in
  Rvaas.Snapshot.apply_event snap ~sw:0 ~now:(0.01 *. float_of_int i) ev;
  Rvaas.Journal.append j ~at:(0.01 *. float_of_int i) ~snapshot:snap
    (Rvaas.Journal.Observation { sw = 0; event = ev })

let test_enospc_containment () =
  with_tmp_dir (fun dir ->
      let j = Rvaas.Journal.create ~checkpoint_every:100 () in
      let log = Rvaas.Journal.log j in
      let snap = Rvaas.Snapshot.create () in
      let faults = Support.Storefault.create () in
      faults.Support.Storefault.fail_append_at <- Some 6;
      let store =
        Support.Segment_store.attach ~config:(seg_config 65536) ~faults log ~dir
      in
      for i = 1 to 12 do
        seg_observe j snap i
      done;
      check Alcotest.bool "store degraded" true (Support.Segment_store.degraded store);
      check Alcotest.int "one sink error" 1 (Support.Segment_store.sink_errors store);
      check Alcotest.int "the injected failure fired" 1
        faults.Support.Storefault.failed_appends;
      check Alcotest.int "in-memory journal took every append" 12
        (Support.Journal.length log);
      check Alcotest.bool "in-memory journal still verifies" true
        (Support.Journal.verify log);
      Support.Segment_store.close store;
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "degraded store: %s" e
      | Ok log' ->
        check Alcotest.int "disk holds the pre-fault prefix" 6
          (Support.Journal.length log');
        check Alcotest.bool "prefix verified" true
          (is_prefix_of
             (Support.Journal.entries log')
             (Support.Journal.valid_prefix log)))

let test_short_write_tears_one_frame () =
  with_tmp_dir (fun dir ->
      let j = Rvaas.Journal.create ~checkpoint_every:100 () in
      let log = Rvaas.Journal.log j in
      let snap = Rvaas.Snapshot.create () in
      let faults = Support.Storefault.create () in
      faults.Support.Storefault.short_write_at <- Some 5;
      let store =
        Support.Segment_store.attach ~config:(seg_config 65536) ~faults log ~dir
      in
      for i = 1 to 10 do
        seg_observe j snap i
      done;
      check Alcotest.int "the short write fired" 1
        faults.Support.Storefault.short_writes;
      check Alcotest.bool "torn frame degraded the store" true
        (Support.Segment_store.degraded store);
      Support.Segment_store.close store;
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "torn store: %s" e
      | Ok log' ->
        check Alcotest.int "recovery drops the torn frame and the dark tail" 5
          (Support.Journal.length log');
        check Alcotest.bool "prefix verified" true
          (is_prefix_of
             (Support.Journal.entries log')
             (Support.Journal.valid_prefix log)))

let test_failed_fsync_degrades () =
  with_tmp_dir (fun dir ->
      let j = Rvaas.Journal.create ~checkpoint_every:4 () in
      let log = Rvaas.Journal.log j in
      let snap = Rvaas.Snapshot.create () in
      let faults = Support.Storefault.create () in
      faults.Support.Storefault.fail_sync_at <- Some 0;
      let store =
        Support.Segment_store.attach ~config:(seg_config 65536) ~faults log ~dir
      in
      (* the 4th observation triggers the cadence checkpoint, whose
         fsync is the injected failure *)
      for i = 1 to 4 do
        seg_observe j snap i
      done;
      check Alcotest.int "the fsync failure fired" 1
        faults.Support.Storefault.failed_syncs;
      check Alcotest.bool "failed fsync degraded the store" true
        (Support.Segment_store.degraded store);
      for i = 5 to 8 do
        seg_observe j snap i
      done;
      check Alcotest.int "degraded store stopped mirroring" 10
        (Support.Journal.length log);
      Support.Segment_store.close store;
      match Support.Segment_store.recover_from_dir dir with
      | Error e -> Alcotest.failf "degraded store: %s" e
      | Ok log' ->
        check Alcotest.int "disk holds the pre-fault prefix" 5
          (Support.Journal.length log');
        check Alcotest.bool "prefix verified" true
          (is_prefix_of
             (Support.Journal.entries log')
             (Support.Journal.valid_prefix log)))

(* ---- encryption-at-rest ---- *)

let test_encrypted_roundtrip () =
  let canary = "plaintext-canary-3f9c51" in
  let run_store ?crypt dir =
    let j, snap =
      apply_ops
        (QCheck2.Gen.generate1 ~rand:(Random.State.make [| 37 |])
           QCheck2.Gen.(list_repeat 50 gen_op))
    in
    let log = Rvaas.Journal.log j in
    let store = Support.Segment_store.attach ~config:(seg_config ?crypt 512) log ~dir in
    Rvaas.Journal.append j ~at:99.0 ~snapshot:snap
      (Rvaas.Journal.Query_opened (query_open canary));
    Rvaas.Journal.checkpoint j ~at:99.1 ~snapshot:snap;
    Support.Segment_store.close store;
    (log, snap)
  in
  with_tmp_dir (fun enc_dir ->
      with_tmp_dir (fun plain_dir ->
          let log, snap = run_store ~crypt:atrest enc_dir in
          let _ = run_store plain_dir in
          let dir_has_canary dir =
            List.exists
              (fun f -> contains (read_file (Filename.concat dir f)) canary)
              (seg_files dir)
          in
          check Alcotest.bool "canary methodology works (plaintext store)" true
            (dir_has_canary plain_dir);
          check Alcotest.bool "plaintext never reaches the encrypted store" false
            (dir_has_canary enc_dir);
          (match Support.Segment_store.recover_from_dir ~crypt:atrest enc_dir with
          | Error e -> Alcotest.failf "keyed recovery: %s" e
          | Ok log' ->
            check Alcotest.int "ciphertext recovers every entry"
              (Support.Journal.length log)
              (Support.Journal.length log');
            let r = Rvaas.Journal.recover log' in
            check Alcotest.bool "digest parity through the ciphertext" true
              (Rvaas.Snapshot.digest_vector snap
              = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot);
            check Alcotest.bool "open query survives encrypted recovery" true
              (List.mem canary (open_nonces r)));
          (match Support.Segment_store.recover_from_dir enc_dir with
          | Error e ->
            check Alcotest.bool "refusal names the missing key" true
              (contains e "no key")
          | Ok _ -> Alcotest.fail "recovered ciphertext without a key");
          match
            Support.Segment_store.recover_from_dir
              ~crypt:(Cryptosim.Atrest.crypt ~key:(Cryptosim.Hmac.key_of_string "wrong"))
              enc_dir
          with
          | Error _ -> ()
          | Ok log' ->
            check Alcotest.int "wrong key yields nothing, never plaintext" 0
              (Support.Journal.length log')))

let prop_encrypted_truncation =
  mk_damage_prop ~crypt:(Some atrest)
    ~name:"encrypted segment truncated anywhere recovers a verified prefix"
    truncate_file

let prop_encrypted_bitflip =
  mk_damage_prop ~crypt:(Some atrest)
    ~name:"bit-flipped encrypted frame is rejected by its MAC"
    bitflip_file

(* ---- end to end: a live HA deployment journaling to disk ---- *)

let test_scenario_file_recovery () =
  with_tmp_file (fun path ->
      let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
      let s =
        Workload.Scenario.build
          {
            (Workload.Scenario.default_spec topo) with
            polling = Rvaas.Monitor.Periodic 0.02;
            ha =
              Some
                {
                  Rvaas.Failover.default_config with
                  checkpoint_every = 16;
                  auto_compact = true;
                };
          }
      in
      let ctrl = Workload.Scenario.controller s in
      let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
      let file = Support.Journal_file.attach log ~path in
      Workload.Scenario.run s ~until:0.6;
      check Alcotest.bool "auto-compaction bounded the live journal" true
        (Support.Journal.length log <= 32);
      let live = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
      match Support.Journal_file.recover_from_file path with
      | Error e -> Alcotest.failf "live file recovery: %s" e
      | Ok log' ->
        let r = Rvaas.Journal.recover log' in
        check Alcotest.bool "recovered digest vector equals the live one" true
          (Rvaas.Snapshot.digest_vector live
          = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot);
        Support.Journal_file.close file)

let () =
  Alcotest.run "persistence"
    [
      ( "file-backend",
        [
          Alcotest.test_case "attach, append, recover round-trip" `Quick
            test_file_roundtrip;
          QCheck_alcotest.to_alcotest prop_file_truncation;
          QCheck_alcotest.to_alcotest prop_file_bitflip;
          Alcotest.test_case "fsync boundary survives the kill" `Quick
            test_fsync_boundary;
        ] );
      ( "compaction",
        [
          QCheck_alcotest.to_alcotest prop_compaction_equivalence;
          QCheck_alcotest.to_alcotest prop_bounded_growth;
          Alcotest.test_case "file image rewritten atomically" `Quick
            test_compaction_file_rewrite;
          Alcotest.test_case "rewrite fsyncs the containing directory" `Quick
            test_dir_fsync_on_rewrite;
          Alcotest.test_case "crash mid-rewrite keeps the old image" `Quick
            test_crash_mid_rewrite;
          Alcotest.test_case "generation audit trail preserved" `Quick
            test_compaction_preserves_generations;
        ] );
      ( "segment-store",
        [
          Alcotest.test_case "attach, seal, recover round-trip" `Quick
            test_segment_roundtrip;
          Alcotest.test_case "attach sweeps stale temps and segments" `Quick
            test_attach_sweeps_stale_state;
          QCheck_alcotest.to_alcotest prop_segment_truncation;
          QCheck_alcotest.to_alcotest prop_segment_bitflip;
          Alcotest.test_case "crash points inside the seal protocol" `Quick
            test_crash_mid_seal;
          Alcotest.test_case "crash between compaction unlinks" `Quick
            test_crash_mid_compaction_unlink;
        ] );
      ( "injected-faults",
        [
          Alcotest.test_case "ENOSPC is contained, memory stays authoritative"
            `Quick test_enospc_containment;
          Alcotest.test_case "short write tears exactly one frame" `Quick
            test_short_write_tears_one_frame;
          Alcotest.test_case "failed fsync degrades the sink" `Quick
            test_failed_fsync_degrades;
        ] );
      ( "encrypted-store",
        [
          Alcotest.test_case "ciphertext round-trip, canary, key gating" `Quick
            test_encrypted_roundtrip;
          QCheck_alcotest.to_alcotest prop_encrypted_truncation;
          QCheck_alcotest.to_alcotest prop_encrypted_bitflip;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "live deployment journal recovers from disk" `Quick
            test_scenario_file_recovery;
        ] );
    ]
