(* Differential verification of the compiled plumbing engine.

   [Rvaas.Plumbing] must answer every reach question exactly as the
   per-query sweep does — same endpoints, arriving spaces, traversal
   and controller hits — on monitored deployments, on synthetic rule
   sets with field rewrites, and (the core property) on random
   topologies under random Flow-Mod sequences, where the incremental
   update path and a recompile from scratch must also agree with each
   other.  The oracle is [Rvaas.Verifier_ref], the naive textbook HSA
   formulation. *)

let check = Alcotest.check
let width = Hspace.Field.total_width

let results_agree (a : Rvaas.Verifier.reach_result)
    (b : Rvaas.Verifier.reach_result) =
  List.map fst a.endpoints = List.map fst b.endpoints
  && List.for_all2
       (fun (_, x) (_, y) -> Hspace.Hs.equal x y)
       a.endpoints b.endpoints
  && a.traversed = b.traversed
  && List.map fst a.controller_hits = List.map fst b.controller_hits
  && List.for_all2
       (fun (_, x) (_, y) -> Hspace.Hs.equal x y)
       a.controller_hits b.controller_hits

(* ---- compiled engine vs. sweep on a monitored deployment ---- *)

let test_compiled_matches_scenario () =
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 2; seed = 11 }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
  let plumbing = Rvaas.Plumbing.compile ~flows_of topo in
  let points = Rvaas.Verifier.access_points topo in
  let info = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
  List.iter
    (fun hs ->
      List.iter
        (fun (ep : Rvaas.Verifier.endpoint) ->
          let a =
            Rvaas.Plumbing.reach plumbing ~src_sw:ep.sw ~src_port:ep.port ~hs
          in
          let b =
            Rvaas.Verifier.reach ~flows_of topo ~src_sw:ep.sw ~src_port:ep.port
              ~hs
          in
          check Alcotest.bool "compiled equals sweep" true (results_agree a b))
        points)
    [ Rvaas.Verifier.ip_traffic_hs (); Rvaas.Verifier.dst_ip_hs info.ip ];
  let st = Rvaas.Plumbing.stats plumbing in
  check Alcotest.bool "scoped queries answered by lookup" true
    (st.Rvaas.Plumbing.scoped_lookups > 0);
  check Alcotest.int "no fallback sweeps on a rewrite-free view" 0
    st.Rvaas.Plumbing.fallback_sweeps;
  let g = Rvaas.Plumbing.graph plumbing in
  check Alcotest.bool "graph materialised" true (g.nodes > 0 && g.edges > 0)

(* ---- the service's `Compiled engine stays current via the monitor
   hook: after an attack lands, lookups still equal a fresh sweep of
   the believed view ---- *)

let test_service_compiled_engine () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        seed = 5;
        engine = `Compiled;
      }
  in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Workload.Scenario.run s ~until:(now () +. 0.3);
  check Alcotest.bool "service reports the compiled engine" true
    (Rvaas.Service.engine s.service = `Compiled);
  let plumbing = Option.get (Rvaas.Service.plumbing s.service) in
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Blackhole { victim_host = 2 });
  Workload.Scenario.run s ~until:(now () +. 0.3);
  let st = Rvaas.Plumbing.stats plumbing in
  check Alcotest.bool "monitor deltas reached the graph" true
    (st.Rvaas.Plumbing.updates > 0);
  let snapshot = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
  let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
  List.iter
    (fun (ep : Rvaas.Verifier.endpoint) ->
      let a =
        Rvaas.Service.reach s.service ~src_sw:ep.sw ~src_port:ep.port
          ~hs:(Rvaas.Verifier.ip_traffic_hs ())
      in
      let b =
        Rvaas.Verifier.reach ~flows_of topo ~src_sw:ep.sw ~src_port:ep.port
          ~hs:(Rvaas.Verifier.ip_traffic_hs ())
      in
      check Alcotest.bool "post-attack lookup equals sweep" true
        (results_agree a b))
    (Rvaas.Verifier.access_points topo)

(* ---- field rewrites taint the precomputed source: scoped queries
   must fall back to exact propagation and still match the oracle ---- *)

let test_rewrite_fallback () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let ip_match v =
    Ofproto.Match_.with_exact
      (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Eth_type 0x800)
      Hspace.Field.Ip_dst v
  in
  let flows_of = function
    | 0 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:10 (ip_match 7)
          [ Ofproto.Action.Set_field (Hspace.Field.Ip_dst, 5);
            Ofproto.Action.Flood;
          ];
      ]
    | _ ->
      [ Ofproto.Flow_entry.make_spec ~priority:10 (ip_match 5)
          [ Ofproto.Action.Flood ];
      ]
  in
  let plumbing = Rvaas.Plumbing.compile ~flows_of topo in
  List.iter
    (fun (ep : Rvaas.Verifier.endpoint) ->
      List.iter
        (fun hs ->
          let a =
            Rvaas.Plumbing.reach plumbing ~src_sw:ep.sw ~src_port:ep.port ~hs
          in
          let b =
            Rvaas.Verifier_ref.reach ~flows_of topo ~src_sw:ep.sw
              ~src_port:ep.port ~hs
          in
          check Alcotest.bool "rewriting source equals reference" true
            (results_agree a b))
        [ Rvaas.Verifier.dst_ip_hs 7; Rvaas.Verifier.dst_ip_hs 5 ])
    (Rvaas.Verifier.access_points topo);
  let st = Rvaas.Plumbing.stats plumbing in
  check Alcotest.bool "scoped queries on tainted sources fell back" true
    (st.Rvaas.Plumbing.fallback_sweeps > 0)

(* ---- churn threshold: a burst of distinct-switch deltas beyond the
   threshold recompiles; queries between deltas reset the burst ---- *)

let test_churn_recompile () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let flows_of _ = [] in
  let switches = Netsim.Topology.switches topo in
  let a, b, c =
    match switches with
    | a :: b :: c :: _ -> (a, b, c)
    | _ -> Alcotest.fail "linear 4 has at least three switches"
  in
  let burst = Rvaas.Plumbing.compile ~churn_threshold:2 ~flows_of topo in
  check Alcotest.int "explicit threshold resolved" 2
    (Rvaas.Plumbing.churn_threshold burst);
  Rvaas.Plumbing.update burst ~sw:a;
  Rvaas.Plumbing.update burst ~sw:b;
  check Alcotest.int "below the threshold: delta path" 0
    (Rvaas.Plumbing.stats burst).Rvaas.Plumbing.recompiles;
  Rvaas.Plumbing.update burst ~sw:c;
  check Alcotest.int "burst beyond the threshold recompiled" 1
    (Rvaas.Plumbing.stats burst).Rvaas.Plumbing.recompiles;
  (* Interleaved queries mark the graph settled, so the same three
     deltas never accumulate into a burst. *)
  let settled = Rvaas.Plumbing.compile ~churn_threshold:2 ~flows_of topo in
  let ep = List.hd (Rvaas.Verifier.access_points topo) in
  List.iter
    (fun sw ->
      Rvaas.Plumbing.update settled ~sw;
      ignore
        (Rvaas.Plumbing.reach settled ~src_sw:ep.Rvaas.Verifier.sw
           ~src_port:ep.Rvaas.Verifier.port
           ~hs:(Rvaas.Verifier.ip_traffic_hs ())))
    [ a; b; c ];
  check Alcotest.int "settled deltas never recompile" 0
    (Rvaas.Plumbing.stats settled).Rvaas.Plumbing.recompiles

(* ---- differential churn: a random event program (rolling upgrades,
   link flaps, transient attacks) runs over a generated world while the
   service's compiled engine answers; after every burst the live graph
   must match the sweep oracle AND a recompile from scratch of the same
   believed view ---- *)

let differential_churn topo ~seed =
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        clients = 2;
        seed;
        engine = `Compiled;
        polling = Rvaas.Monitor.Periodic 0.05;
      }
  in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Workload.Scenario.run s ~until:(now () +. 0.3);
  let profile =
    {
      Workload.Churn.default_profile with
      upgrades_per_min = 12.0;
      flaps_per_min = 18.0;
      attacks_per_min = 12.0;
      storms_per_min = 0.0;
      upgrade_outage = 0.4;
      flap_down = 0.3;
      attack_dwell = 0.5;
    }
  in
  let start = now () +. 0.2 in
  let campaign = Workload.Churn.plan s profile ~seed ~start ~duration:12.0 in
  check Alcotest.bool "campaign not empty" true
    (Workload.Churn.event_count campaign > 0);
  let _report = Workload.Churn.schedule s campaign in
  let info = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
  let scopes = [ Rvaas.Verifier.ip_traffic_hs (); Rvaas.Verifier.dst_ip_hs info.ip ] in
  let points = Rvaas.Verifier.access_points topo in
  for burst = 1 to 8 do
    Workload.Scenario.run s ~until:(start +. (float_of_int burst *. 1.5));
    let snapshot = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
    let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
    let fresh = Rvaas.Plumbing.compile ~flows_of topo in
    List.iter
      (fun (ep : Rvaas.Verifier.endpoint) ->
        List.iter
          (fun hs ->
            let live =
              Rvaas.Service.reach (Workload.Scenario.service s) ~src_sw:ep.sw
                ~src_port:ep.port ~hs
            in
            let sweep =
              Rvaas.Verifier.reach ~flows_of topo ~src_sw:ep.sw
                ~src_port:ep.port ~hs
            in
            let recompiled =
              Rvaas.Plumbing.reach fresh ~src_sw:ep.sw ~src_port:ep.port ~hs
            in
            check Alcotest.bool "compiled equals sweep under churn" true
              (results_agree live sweep);
            check Alcotest.bool "incremental equals recompile under churn" true
              (results_agree live recompiled))
          scopes)
      points
  done

let test_differential_churn_leaf_spine () =
  differential_churn
    (Workload.Topogen.leaf_spine Workload.Topogen.default_params ~spines:2
       ~leaves:4)
    ~seed:41

let test_differential_churn_backbone () =
  differential_churn
    (Workload.Topogen.scale_free Workload.Topogen.default_params
       (Support.Rng.create 8) ~n:8 ~m:2)
    ~seed:42

(* ---- the core property: width-8 brute-force differential against
   the reference verifier over random topologies and random Flow-Mod
   sequences ---- *)

(* Abstract rule descriptor, materialised once the topology (and so
   the port list) is known.  Matches vary ~8 header bits — Ip_dst low
   nibble under a random mask, Tp_dst low two bits, sometimes the
   ingress port — which keeps the brute-forceable space small while
   exercising shadowing, rewrites and every action shape. *)
type rule_d = {
  rd_prio : int;
  rd_in_port : int option;
  rd_dst_mask : int;
  rd_dst_val : int;
  rd_tp : int option;
  rd_act : int;
  rd_port : int;
  rd_set : int;
}

let materialise ~ports rd =
  let nth k = List.nth ports (k mod List.length ports) in
  let m =
    Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Eth_type 0x800
  in
  let m =
    match rd.rd_in_port with
    | Some k -> Ofproto.Match_.with_in_port m (nth k)
    | None -> m
  in
  let m =
    if rd.rd_dst_mask = 0 then m
    else
      Ofproto.Match_.with_field m Hspace.Field.Ip_dst
        ~value:(rd.rd_dst_val land rd.rd_dst_mask)
        ~mask:rd.rd_dst_mask
  in
  let m =
    match rd.rd_tp with
    | Some v -> Ofproto.Match_.with_exact m Hspace.Field.Tp_dst (v mod 4)
    | None -> m
  in
  let actions =
    match rd.rd_act mod 6 with
    | 0 -> [ Ofproto.Action.Output (nth rd.rd_port) ]
    | 1 -> [ Ofproto.Action.Flood ]
    | 2 -> [ Ofproto.Action.To_controller ]
    | 3 ->
      [
        Ofproto.Action.Set_field (Hspace.Field.Ip_dst, rd.rd_set land 15);
        Ofproto.Action.Output (nth rd.rd_port);
      ]
    | 4 -> []
    | _ -> [ Ofproto.Action.In_port ]
  in
  Ofproto.Flow_entry.make_spec ~cookie:1 ~priority:rd.rd_prio m actions

let gen_rule =
  QCheck2.Gen.(
    map
      (fun ((prio, in_port, mask, v), (tp, act, port, set)) ->
        {
          rd_prio = prio;
          rd_in_port = in_port;
          rd_dst_mask = mask;
          rd_dst_val = v;
          rd_tp = tp;
          rd_act = act;
          rd_port = port;
          rd_set = set;
        })
      (pair
         (quad (int_range 1 99) (option (int_bound 3)) (int_bound 15)
            (int_bound 15))
         (quad (option (int_bound 3)) (int_bound 5) (int_bound 7) (int_bound 15))))

(* A case: topology selector, a pool of per-switch rule lists, a
   Flow-Mod sequence (switch selector, insert-or-remove, new rule) and
   a destination address for the scoped query. *)
let gen_case =
  QCheck2.Gen.(
    quad (int_bound 4)
      (list_repeat 10 (list_size (int_bound 4) gen_rule))
      (list_size (int_bound 6) (triple (int_bound 7) (int_bound 1) gen_rule))
      (int_bound 15))

let prop_compiled_equals_reference =
  QCheck2.Test.make ~count:30
    ~name:"compiled reach = reference reach under random Flow-Mod sequences"
    gen_case
    (fun (t_sel, rule_pool, mods, dst) ->
      let p = Workload.Topogen.default_params in
      let topo =
        match t_sel mod 5 with
        | 0 -> Workload.Topogen.linear p 2
        | 1 -> Workload.Topogen.linear p 4
        | 2 -> Workload.Topogen.ring p 3
        | 3 -> Workload.Topogen.grid p ~rows:2 ~cols:2
        | _ -> Workload.Topogen.star p 3
      in
      let switches = Netsim.Topology.switches topo in
      let tables : (int, Ofproto.Flow_entry.spec list) Hashtbl.t =
        Hashtbl.create 8
      in
      List.iteri
        (fun i sw ->
          let ports = Netsim.Topology.switch_ports topo sw in
          let rules =
            List.map (materialise ~ports) (List.nth rule_pool (i mod 10))
          in
          Hashtbl.replace tables sw
            (List.sort
               (fun (a : Ofproto.Flow_entry.spec) (b : Ofproto.Flow_entry.spec)
                  -> compare b.priority a.priority)
               rules))
        switches;
      let flows_of sw =
        Option.value ~default:[] (Hashtbl.find_opt tables sw)
      in
      let plumbing = Rvaas.Plumbing.compile ~flows_of topo in
      let points = Rvaas.Verifier.access_points topo in
      let scopes hs_dst =
        [
          Hspace.Hs.full width;
          Rvaas.Verifier.ip_traffic_hs ();
          Rvaas.Verifier.dst_ip_hs hs_dst;
        ]
      in
      let agree plumbing =
        List.for_all
          (fun (ep : Rvaas.Verifier.endpoint) ->
            List.for_all
              (fun hs ->
                results_agree
                  (Rvaas.Plumbing.reach plumbing ~src_sw:ep.sw
                     ~src_port:ep.port ~hs)
                  (Rvaas.Verifier_ref.reach ~flows_of topo ~src_sw:ep.sw
                     ~src_port:ep.port ~hs))
              (scopes dst))
          points
      in
      agree plumbing
      && List.for_all
           (fun (sw_sel, kind, rd) ->
             let sw = List.nth switches (sw_sel mod List.length switches) in
             let ports = Netsim.Topology.switch_ports topo sw in
             (match (kind, Hashtbl.find_opt tables sw) with
             | 1, Some (_ :: rest) -> Hashtbl.replace tables sw rest
             | _, prev ->
               (* Insert keeping the priority-descending invariant
                  (new rule after existing equal priorities, matching
                  a real table's insertion order). *)
               let spec = materialise ~ports rd in
               let higher, lower =
                 List.partition
                   (fun (r : Ofproto.Flow_entry.spec) ->
                     r.priority >= spec.priority)
                   (Option.value ~default:[] prev)
               in
               Hashtbl.replace tables sw (higher @ (spec :: lower)));
             Rvaas.Plumbing.update plumbing ~sw;
             agree plumbing)
           mods
      &&
      (* The incrementally maintained graph and a recompile from
         scratch agree on every question. *)
      let fresh = Rvaas.Plumbing.compile ~flows_of topo in
      List.for_all
        (fun (ep : Rvaas.Verifier.endpoint) ->
          List.for_all
            (fun hs ->
              results_agree
                (Rvaas.Plumbing.reach plumbing ~src_sw:ep.sw ~src_port:ep.port
                   ~hs)
                (Rvaas.Plumbing.reach fresh ~src_sw:ep.sw ~src_port:ep.port
                   ~hs))
            (scopes dst))
        points)

let () =
  Alcotest.run "plumbing"
    [
      ( "differential",
        [
          Alcotest.test_case "compiled equals sweep on a deployment" `Quick
            test_compiled_matches_scenario;
          Alcotest.test_case "rewriting sources fall back exactly" `Quick
            test_rewrite_fallback;
          QCheck_alcotest.to_alcotest prop_compiled_equals_reference;
          Alcotest.test_case "churn over a leaf-spine fabric" `Quick
            test_differential_churn_leaf_spine;
          Alcotest.test_case "churn over a scale-free backbone" `Quick
            test_differential_churn_backbone;
        ] );
      ( "maintenance",
        [
          Alcotest.test_case "service compiled engine stays current" `Quick
            test_service_compiled_engine;
          Alcotest.test_case "churn threshold triggers recompile" `Quick
            test_churn_recompile;
        ] );
    ]
