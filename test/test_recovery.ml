(* Crash recovery: durable journal, snapshot images, controller
   failover.

   Layers under test, bottom up: the checksummed generation-numbered
   log ([Support.Journal]), binary snapshot images ([Rvaas.Snapshot]),
   the typed record layer with checkpoints and replay
   ([Rvaas.Journal]), and the full kill-the-controller /
   partition-heal / restart protocols ([Rvaas.Failover]). *)

let check = Alcotest.check

(* ---- Support.Journal: chained checksums, generations ---- *)

let test_journal_chain () =
  let log = Support.Journal.create () in
  for i = 0 to 4 do
    ignore
      (Support.Journal.append log ~at:(float_of_int i) ~tag:"obs"
         ~payload:(Printf.sprintf "payload-%d" i))
  done;
  check Alcotest.int "length" 5 (Support.Journal.length log);
  check Alcotest.int "last_seq" 4 (Support.Journal.last_seq log);
  check Alcotest.bool "verify" true (Support.Journal.verify log);
  check Alcotest.int "valid prefix is everything" 5
    (List.length (Support.Journal.valid_prefix log));
  check (Alcotest.option Alcotest.(float 1e-9)) "last_at" (Some 4.0)
    (Support.Journal.last_at log);
  check Alcotest.int "generation starts at 1" 1 (Support.Journal.generation log);
  let g = Support.Journal.begin_generation log ~at:5.0 in
  check Alcotest.int "generation bumped" 2 g;
  check Alcotest.int "generation entry appended" 6 (Support.Journal.length log);
  let e = List.nth (Support.Journal.entries log) 5 in
  check Alcotest.string "generation tag" Support.Journal.generation_tag
    e.Support.Journal.tag;
  check Alcotest.int "new entries carry the new generation" 2 e.Support.Journal.gen;
  check Alcotest.bool "still verifies" true (Support.Journal.verify log)

let entry_equal (a : Support.Journal.entry) (b : Support.Journal.entry) =
  a.gen = b.gen && a.seq = b.seq
  && Float.equal a.at b.at
  && String.equal a.tag b.tag
  && String.equal a.payload b.payload
  && Int64.equal a.checksum b.checksum

let populated_log () =
  let log = Support.Journal.create () in
  (* Payloads exercise binary bytes, NULs and newlines. *)
  let payloads = [ "plain"; ""; "line\nbreak"; "nul\000byte"; String.make 300 '\xff' ] in
  List.iteri
    (fun i p ->
      ignore (Support.Journal.append log ~at:(0.1 *. float_of_int i) ~tag:"t" ~payload:p);
      if i = 2 then ignore (Support.Journal.begin_generation log ~at:0.25))
    payloads;
  log

let test_journal_codec_roundtrip () =
  let log = populated_log () in
  match Support.Journal.decode (Support.Journal.encode log) with
  | Error e -> Alcotest.failf "decode failed: %s" e
  | Ok log' ->
    check Alcotest.int "length preserved" (Support.Journal.length log)
      (Support.Journal.length log');
    check Alcotest.int "generation preserved" (Support.Journal.generation log)
      (Support.Journal.generation log');
    check Alcotest.bool "decoded verifies" true (Support.Journal.verify log');
    List.iter2
      (fun a b -> check Alcotest.bool "entry preserved" true (entry_equal a b))
      (Support.Journal.entries log)
      (Support.Journal.entries log')

let test_journal_torn_write () =
  let log = populated_log () in
  let image = Support.Journal.encode log in
  (* A torn tail (partial final write) must decode to the valid
     prefix, not an error. *)
  (match Support.Journal.decode (String.sub image 0 (String.length image - 7)) with
  | Error e -> Alcotest.failf "torn tail rejected: %s" e
  | Ok log' ->
    check Alcotest.bool "some prefix survives" true (Support.Journal.length log' >= 1);
    check Alcotest.bool "shorter than the original" true
      (Support.Journal.length log' < Support.Journal.length log);
    check Alcotest.bool "prefix verifies" true (Support.Journal.verify log'));
  (* Corruption in the middle cuts the prefix at the damaged entry: the
     chained checksums refuse everything after it. *)
  let pos = String.length image / 2 in
  let corrupt = Bytes.of_string image in
  Bytes.set corrupt pos (Char.chr (Char.code (Bytes.get corrupt pos) lxor 0xff));
  match Support.Journal.decode (Bytes.to_string corrupt) with
  | Error _ -> () (* corrupting a length header may kill the whole parse *)
  | Ok log' ->
    check Alcotest.bool "corrupt middle shortens the log" true
      (Support.Journal.length log' < Support.Journal.length log);
    check Alcotest.bool "surviving prefix verifies" true (Support.Journal.verify log')

let prop_journal_any_cut =
  QCheck2.Test.make ~name:"decode of any truncation is a verified prefix" ~count:100
    QCheck2.Gen.(int_bound 2000)
    (fun cut ->
      let log = populated_log () in
      let image = Support.Journal.encode log in
      let cut = min cut (String.length image) in
      match Support.Journal.decode (String.sub image 0 cut) with
      | Error _ -> true (* a cut inside the header is allowed to fail *)
      | Ok log' ->
        let orig = Support.Journal.entries log in
        let got = Support.Journal.entries log' in
        Support.Journal.verify log'
        && List.length got <= List.length orig
        && List.for_all2 entry_equal got
             (List.filteri (fun i _ -> i < List.length got) orig))

(* ---- Snapshot: binary image round-trip ---- *)

let gen_action =
  QCheck2.Gen.(
    oneof
      [
        map (fun p -> Ofproto.Action.Output p) (int_bound 7);
        return Ofproto.Action.In_port;
        return Ofproto.Action.Flood;
        return Ofproto.Action.To_controller;
        map (fun v -> Ofproto.Action.Set_field (Hspace.Field.Ip_dst, v)) (int_bound 255);
        map (fun q -> Ofproto.Action.Set_queue q) (int_bound 3);
      ])

let gen_match =
  QCheck2.Gen.(
    let* in_port = opt (int_bound 7) in
    let* dst = opt (int_bound 255) in
    let* src = opt (int_bound 255) in
    let m = Ofproto.Match_.any in
    let m = match in_port with Some p -> Ofproto.Match_.with_in_port m p | None -> m in
    let m =
      match dst with
      | Some v -> Ofproto.Match_.with_exact m Hspace.Field.Ip_dst v
      | None -> m
    in
    let m =
      match src with
      | Some v -> Ofproto.Match_.with_field m Hspace.Field.Ip_src ~value:v ~mask:0xf0
      | None -> m
    in
    return m)

let gen_spec =
  QCheck2.Gen.(
    let* priority = int_range 1 100 in
    let* cookie = int_bound 10_000 in
    let* meter = opt (int_range 1 5) in
    let* hard_timeout = opt (map (fun t -> float_of_int t /. 10.0) (int_range 1 50)) in
    let* m = gen_match in
    let* actions = list_size (int_bound 3) gen_action in
    return (Ofproto.Flow_entry.make_spec ~cookie ?meter ?hard_timeout ~priority m actions))

let gen_event =
  QCheck2.Gen.(
    let* spec = gen_spec in
    oneof
      [
        return (Ofproto.Message.Flow_added spec);
        return (Ofproto.Message.Flow_deleted spec);
        return (Ofproto.Message.Flow_modified spec);
      ])

(* A random monitored life: events over 4 switches plus meter tables. *)
let gen_snapshot_script =
  QCheck2.Gen.(
    let* events = list_size (int_range 1 40) (pair (int_bound 3) gen_event) in
    let* meters =
      small_list (pair (int_bound 3) (small_list (pair (int_range 1 4) (int_range 100 9999))))
    in
    return (events, meters))

let build_snapshot (events, meters) =
  let snap = Rvaas.Snapshot.create () in
  List.iteri
    (fun i (sw, ev) ->
      Rvaas.Snapshot.apply_event snap ~sw ~now:(0.01 *. float_of_int i) ev)
    events;
  List.iter
    (fun (sw, bands) ->
      Rvaas.Snapshot.replace_meters snap ~sw
        (List.map (fun (id, rate) -> (id, { Ofproto.Meter.rate_kbps = rate })) bands))
    meters;
  snap

let specs_equal a b =
  List.length a = List.length b && List.for_all2 Ofproto.Flow_entry.spec_equal a b

let prop_snapshot_roundtrip =
  QCheck2.Test.make ~name:"snapshot image preserves digests, flows and meters"
    ~count:100 gen_snapshot_script (fun script ->
      let snap = build_snapshot script in
      match Rvaas.Snapshot.of_bytes (Rvaas.Snapshot.to_bytes snap) with
      | Error e -> QCheck2.Test.fail_reportf "of_bytes failed: %s" e
      | Ok snap' ->
        Int64.equal (Rvaas.Snapshot.digest snap) (Rvaas.Snapshot.digest snap')
        && Rvaas.Snapshot.digest_vector snap = Rvaas.Snapshot.digest_vector snap'
        && List.for_all
             (fun sw ->
               specs_equal
                 (Rvaas.Snapshot.flows snap ~sw)
                 (Rvaas.Snapshot.flows snap' ~sw)
               && Rvaas.Snapshot.meters snap ~sw = Rvaas.Snapshot.meters snap' ~sw
               && Float.equal
                    (Rvaas.Snapshot.last_refresh snap ~sw)
                    (Rvaas.Snapshot.last_refresh snap' ~sw))
             (Rvaas.Snapshot.switches snap))

let test_snapshot_image_rejects_garbage () =
  (match Rvaas.Snapshot.of_bytes "not a snapshot" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted");
  match Rvaas.Snapshot.of_bytes "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty string accepted"

(* ---- Rvaas.Journal: typed records, checkpoints, recovery ---- *)

let sample_spec pri =
  Ofproto.Flow_entry.make_spec ~cookie:7 ~priority:pri
    (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst pri)
    [ Ofproto.Action.Output 1 ]

let test_typed_journal_recovery () =
  let j = Rvaas.Journal.create ~checkpoint_every:4 () in
  let snap = Rvaas.Snapshot.create () in
  let at = ref 0.0 in
  let observe sw ev =
    at := !at +. 0.01;
    Rvaas.Snapshot.apply_event snap ~sw ~now:!at ev;
    Rvaas.Journal.append j ~at:!at ~snapshot:snap (Rvaas.Journal.Observation { sw; event = ev })
  in
  for i = 1 to 10 do
    observe (i mod 3) (Ofproto.Message.Flow_added (sample_spec i))
  done;
  observe 0 (Ofproto.Message.Flow_deleted (sample_spec 3));
  (* Two queries open, one closes: recovery must surface exactly the
     one still in flight. *)
  let q nonce =
    {
      Rvaas.Journal.q_nonce = nonce;
      q_client = 0;
      q_sw = 1;
      q_port = 0;
      q_ip = Some 0xa000001;
      q_query = Rvaas.Query.make Rvaas.Query.Isolation;
    }
  in
  Rvaas.Journal.append j ~at:!at ~snapshot:snap (Rvaas.Journal.Query_opened (q "aaa"));
  Rvaas.Journal.append j ~at:!at ~snapshot:snap (Rvaas.Journal.Query_opened (q "bbb"));
  Rvaas.Journal.append j ~at:!at ~snapshot:snap (Rvaas.Journal.Query_closed { nonce = "aaa" });
  Rvaas.Journal.heartbeat j ~at:!at;
  let r = Rvaas.Journal.recover (Rvaas.Journal.log j) in
  check Alcotest.bool "replayed some mutations past the checkpoint" true (r.replayed >= 0);
  check Alcotest.int "one query still open" 1 (List.length r.open_queries);
  check Alcotest.string "the unclosed one" "bbb"
    (List.hd r.open_queries).Rvaas.Journal.q_nonce;
  check Alcotest.int "generation" 1 r.generation;
  check Alcotest.bool "recovered digest matches the live snapshot" true
    (Int64.equal (Rvaas.Snapshot.digest snap) (Rvaas.Snapshot.digest r.snapshot));
  check Alcotest.bool "digest vector matches" true
    (Rvaas.Snapshot.digest_vector snap = Rvaas.Snapshot.digest_vector r.snapshot);
  (* The whole thing survives serialisation — a restarted process
     recovers the same state from the decoded image. *)
  match Support.Journal.decode (Support.Journal.encode (Rvaas.Journal.log j)) with
  | Error e -> Alcotest.failf "journal image: %s" e
  | Ok log' ->
    let r' = Rvaas.Journal.recover log' in
    check Alcotest.bool "post-image digest identical" true
      (Int64.equal (Rvaas.Snapshot.digest snap) (Rvaas.Snapshot.digest r'.snapshot));
    check Alcotest.int "post-image open queries" 1 (List.length r'.open_queries)

(* ---- Failover: kill the controller, heal partitions, restart ---- *)

let ha_config =
  {
    Rvaas.Failover.heartbeat_period = 0.01;
    takeover_timeout = 0.05;
    check_period = 0.01;
    checkpoint_every = 32;
    standbys = 1;
    auto_compact = false;
    replica_lag = 8;
    replica_delay = 0.0;
  }

let ha_scenario ?(seed = 42) ?(config = ha_config) () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  Workload.Scenario.build
    {
      (Workload.Scenario.default_spec topo) with
      seed;
      polling = Rvaas.Monitor.Periodic 0.02;
      agent_resend = Some 0.12;
      ha = Some config;
    }

(* Drive one isolation query from host 0 to completion, crashing the
   primary [crash_offset] seconds after the query goes out when
   requested.  Returns (scenario, verdict) where the verdict is the
   (endpoints, sorted alarms) pair the detector extracts. *)
let drive_query ?crash_offset s =
  let now () = Netsim.Sim.now (Netsim.Net.sim s.Workload.Scenario.net) in
  let agent = Workload.Scenario.agent s ~host:0 in
  let result = ref None in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> result := Some o);
  let nonce =
    Rvaas.Client_agent.send_query agent (Rvaas.Query.make Rvaas.Query.Isolation)
  in
  (match crash_offset with
  | Some dt ->
    Workload.Scenario.run s ~until:(now () +. dt);
    Rvaas.Failover.crash (Workload.Scenario.controller s);
    Rvaas.Failover.enable_standby (Workload.Scenario.controller s)
  | None -> ());
  let matched (o : Rvaas.Client_agent.outcome) =
    String.equal o.Rvaas.Client_agent.answer.Rvaas.Query.nonce nonce
  in
  let deadline = now () +. 1.5 in
  while
    (match !result with Some o -> not (matched o) | None -> true) && now () < deadline
  do
    Workload.Scenario.run s ~until:(now () +. 0.01)
  done;
  match !result with
  | Some o when matched o ->
    let answer = o.Rvaas.Client_agent.answer in
    let alarms =
      Rvaas.Detector.check_answer (Workload.Scenario.policy_for s ~client:0) answer
    in
    Some
      ( List.length answer.Rvaas.Query.endpoints,
        List.sort String.compare (List.map Rvaas.Detector.describe alarms) )
  | Some _ | None -> None

let launch_join s =
  Sdnctl.Attack.launch s.Workload.Scenario.net s.Workload.Scenario.addressing
    ~conn:(Sdnctl.Provider.conn s.Workload.Scenario.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 })

let test_kill_the_controller () =
  (* Fault-free twin first: same seed, same timeline, no crash. *)
  let s0 = ha_scenario () in
  Workload.Scenario.run s0 ~until:0.3;
  launch_join s0;
  Workload.Scenario.run s0 ~until:0.4;
  let expected = drive_query s0 in
  check Alcotest.bool "fault-free run answers" true (expected <> None);
  (* Crash run: kill the primary 2 ms after the query goes out. *)
  let s = ha_scenario () in
  Workload.Scenario.run s ~until:0.3;
  launch_join s;
  Workload.Scenario.run s ~until:0.4;
  let got = drive_query ~crash_offset:0.002 s in
  let ctrl = Workload.Scenario.controller s in
  (match Rvaas.Failover.last_takeover ctrl with
  | None -> Alcotest.fail "standby never took over"
  | Some r ->
    check Alcotest.int "new generation" 2 r.Rvaas.Failover.generation;
    check Alcotest.bool "takeover bounded" true
      (r.Rvaas.Failover.detected_at -. r.Rvaas.Failover.crashed_at
      <= ha_config.takeover_timeout +. (2.0 *. ha_config.check_period)
         +. ha_config.heartbeat_period));
  check Alcotest.int "generation accessor" 2 (Rvaas.Failover.generation ctrl);
  check Alcotest.bool "crashed run answers" true (got <> None);
  check
    (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.string))
    "verdict parity with the fault-free run" (Option.get expected) (Option.get got);
  (* The attack must actually be visible in both verdicts. *)
  check Alcotest.bool "join attack flagged" true (snd (Option.get got) <> [])

let test_partition_heals () =
  let s = ha_scenario () in
  Workload.Scenario.run s ~until:0.3;
  let ctrl = Workload.Scenario.controller s in
  let conn = Rvaas.Monitor.conn (Workload.Scenario.monitor s) in
  let sessions0 = Netsim.Net.conn_sessions conn in
  Rvaas.Failover.partition ctrl;
  check Alcotest.bool "session down" false (Netsim.Net.conn_up conn);
  Workload.Scenario.run s ~until:0.4;
  check Alcotest.bool "session healed" true (Netsim.Net.conn_up conn);
  check Alcotest.bool "guard counted the resync" true (Rvaas.Failover.resyncs ctrl >= 1);
  check Alcotest.bool "session re-established" true
    (Netsim.Net.conn_sessions conn > sessions0);
  check Alcotest.int "same incarnation" 1 (Rvaas.Failover.generation ctrl);
  (* The healed session serves queries. *)
  check Alcotest.bool "query works after heal" true (drive_query s <> None)

let test_restart_replay () =
  let s = ha_scenario () in
  Workload.Scenario.run s ~until:0.3;
  let ctrl = Workload.Scenario.controller s in
  let digest_before =
    Rvaas.Snapshot.digest (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s))
  in
  Rvaas.Failover.crash ctrl;
  Workload.Scenario.run s ~until:0.35;
  let r = Rvaas.Failover.restart ctrl in
  check Alcotest.int "restart is generation 2" 2 r.Rvaas.Failover.generation;
  (* The replayed snapshot already matches the pre-crash state before
     any new poll lands. *)
  check Alcotest.bool "replayed digest matches pre-crash state" true
    (Int64.equal digest_before
       (Rvaas.Snapshot.digest (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s))));
  Workload.Scenario.run s ~until:0.5;
  check Alcotest.bool "restarted controller serves queries" true (drive_query s <> None)

let test_live_journal_image_recovers () =
  (* End-to-end durability: image the journal of a running deployment,
     decode it, recover — the digest must equal the live snapshot's. *)
  let s = ha_scenario () in
  Workload.Scenario.run s ~until:0.5;
  let log = Rvaas.Journal.log (Rvaas.Failover.journal (Workload.Scenario.controller s)) in
  match Support.Journal.decode (Support.Journal.encode log) with
  | Error e -> Alcotest.failf "image decode: %s" e
  | Ok log' ->
    let r = Rvaas.Journal.recover log' in
    let live = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
    check Alcotest.bool "digest parity" true
      (Int64.equal (Rvaas.Snapshot.digest live) (Rvaas.Snapshot.digest r.snapshot));
    check Alcotest.bool "digest vector parity" true
      (Rvaas.Snapshot.digest_vector live = Rvaas.Snapshot.digest_vector r.snapshot);
    check Alcotest.int "no queries in flight" 0 (List.length r.open_queries)

(* ---- quorum election: N standbys, one winner ---- *)

(* Arm [count] standbys with seed-dependent phases so the order in
   which they observe the staleness differs run to run. *)
let arm_phased ctrl ~seed ~count =
  let phase sid = float_of_int (((seed * 7) + (sid * 13)) mod 29) *. 0.0007 in
  Rvaas.Failover.enable_standbys ~phase ctrl ~count

let run_sim s ~until = Workload.Scenario.run s ~until

let sim_now s = Netsim.Sim.now (Netsim.Net.sim s.Workload.Scenario.net)

let test_quorum_single_winner () =
  (* >= 20 RNG seeds; each: 3 standbys with randomized observation
     order, crash, exactly one takeover; then crash the winner —
     generations strictly increase and again exactly one wins. *)
  for seed = 1 to 24 do
    let s = ha_scenario ~seed ~config:{ ha_config with standbys = 0 } () in
    run_sim s ~until:0.3;
    let ctrl = Workload.Scenario.controller s in
    arm_phased ctrl ~seed ~count:3;
    check Alcotest.int "three standbys armed" 3 (Rvaas.Failover.standby_count ctrl);
    run_sim s ~until:0.35;
    Rvaas.Failover.crash ctrl;
    run_sim s ~until:0.8;
    let tks = Rvaas.Failover.takeovers ctrl in
    check Alcotest.int
      (Printf.sprintf "seed %d: exactly one takeover" seed)
      1 (List.length tks);
    let r = List.hd tks in
    check Alcotest.int "first takeover is generation 2" 2 r.Rvaas.Failover.generation;
    check Alcotest.bool "winner is an armed standby" true
      (r.Rvaas.Failover.winner >= 0 && r.Rvaas.Failover.winner < 3);
    check Alcotest.bool "service live under the new generation" true
      (Rvaas.Service.live (Workload.Scenario.service s));
    (* Kill the new incarnation: the standbys stayed armed, elect
       again, and the generation strictly increases. *)
    Rvaas.Failover.crash ctrl;
    run_sim s ~until:(sim_now s +. 0.45);
    let tks = Rvaas.Failover.takeovers ctrl in
    check Alcotest.int
      (Printf.sprintf "seed %d: second crash, second takeover" seed)
      2 (List.length tks);
    let gens = List.map (fun r -> r.Rvaas.Failover.generation) tks in
    check (Alcotest.list Alcotest.int) "generations strictly increase" [ 2; 3 ] gens
  done

let has_claim_by log ~sid =
  List.exists
    (fun (e : Support.Journal.entry) ->
      String.equal e.Support.Journal.tag Rvaas.Journal.claim_tag
      &&
      match Rvaas.Journal.decode_entry e with
      | Ok (Rvaas.Journal.Claim { sid = s }) -> s = sid
      | Ok _ | Error _ -> false)
    (Support.Journal.entries log)

let test_quorum_partitioned_loser_heals () =
  (* Standby 0 observes the staleness first and journals its claim —
     then partitions before it can decide.  Its claim must expire, a
     healthy standby must win instead, and the healed standby 0 must
     rejoin as a standby of the new generation (no second takeover =
     no split brain) — yet still guard against the next crash. *)
  for seed = 1 to 6 do
    let s = ha_scenario ~seed ~config:{ ha_config with standbys = 0 } () in
    run_sim s ~until:0.3;
    let ctrl = Workload.Scenario.controller s in
    (* standby 0 ticks ~4 ms ahead of standbys 1 and 2 *)
    Rvaas.Failover.enable_standbys
      ~phase:(fun sid -> if sid = 0 then 0.0 else 0.004)
      ctrl ~count:3;
    run_sim s ~until:0.32;
    Rvaas.Failover.crash ctrl;
    let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
    let deadline = sim_now s +. 0.3 in
    while (not (has_claim_by log ~sid:0)) && sim_now s < deadline do
      run_sim s ~until:(sim_now s +. 0.002)
    done;
    check Alcotest.bool "standby 0 claimed first" true (has_claim_by log ~sid:0);
    check Alcotest.int "no takeover yet (claim window open)" 0
      (List.length (Rvaas.Failover.takeovers ctrl));
    Rvaas.Failover.partition_standby ctrl ~sid:0;
    run_sim s ~until:(sim_now s +. 0.3);
    (let tks = Rvaas.Failover.takeovers ctrl in
     check Alcotest.int
       (Printf.sprintf "seed %d: healthy standby took over" seed)
       1 (List.length tks);
     let r = List.hd tks in
     check Alcotest.bool "partitioned claimant did not win" true
       (r.Rvaas.Failover.winner <> 0);
     check Alcotest.int "generation 2" 2 r.Rvaas.Failover.generation);
    Rvaas.Failover.heal_standby ctrl ~sid:0;
    run_sim s ~until:(sim_now s +. 0.3);
    check Alcotest.int "healed loser rejoined as standby (no split brain)" 1
      (List.length (Rvaas.Failover.takeovers ctrl));
    check Alcotest.int "generation still 2" 2 (Rvaas.Failover.generation ctrl);
    (* The healed standby is live again: next crash elects among all
       three, and standby 0 (lowest id, connected) wins this one. *)
    Rvaas.Failover.crash ctrl;
    run_sim s ~until:(sim_now s +. 0.45);
    let tks = Rvaas.Failover.takeovers ctrl in
    check Alcotest.int "second crash recovered" 2 (List.length tks);
    let r2 = List.nth tks 1 in
    check Alcotest.int "generation 3" 3 r2.Rvaas.Failover.generation;
    check Alcotest.int "healed standby 0 wins the next election" 0
      r2.Rvaas.Failover.winner
  done

(* ---- replica lag: elections over lag-bounded replica tails ---- *)

let lag_config = { ha_config with standbys = 0; replica_lag = 64; replica_delay = 0.02 }

(* The reconcile mechanics in isolation: a delayed tail is genuinely
   behind its source, and catch-up — what an election winner runs
   before takeover — applies the backlog until the view reaches the
   source exactly. *)
let test_replica_catch_up_mechanics () =
  let j = Rvaas.Journal.create ~checkpoint_every:100 () in
  let log = Rvaas.Journal.log j in
  let replica = Support.Replica.create ~max_lag:64 ~delay:0.02 log in
  for i = 1 to 10 do
    Rvaas.Journal.heartbeat j ~at:(0.01 *. float_of_int i)
  done;
  Support.Replica.pump replica ~now:0.105;
  check Alcotest.bool "tail lags the source" true (Support.Replica.queued replica > 0);
  check Alcotest.bool "view is behind" true
    (Support.Journal.length (Support.Replica.view replica) < Support.Journal.length log);
  let applied = Support.Replica.catch_up replica in
  check Alcotest.bool "catch-up applied the backlog" true (applied > 0);
  check Alcotest.int "view reaches the source"
    (Support.Journal.length log)
    (Support.Journal.length (Support.Replica.view replica));
  check Alcotest.bool "caught-up view verifies" true
    (Support.Journal.verify (Support.Replica.view replica))

let test_lagging_quorum_elections () =
  (* 24 seeds; each: replicas demonstrably behind the primary, crash,
     exactly one winner despite every election read going through a
     lagging view.  The takeover report shows the winners reconciling
     in-transit frames whenever rival claims were still in flight. *)
  let reconciling = ref 0 in
  for seed = 1 to 24 do
    let s = ha_scenario ~seed ~config:lag_config () in
    run_sim s ~until:0.3;
    let ctrl = Workload.Scenario.controller s in
    arm_phased ctrl ~seed ~count:3;
    run_sim s ~until:0.35;
    check Alcotest.bool
      (Printf.sprintf "seed %d: some replica tail is behind" seed)
      true
      (List.exists
         (fun sid ->
           Support.Replica.queued (Rvaas.Failover.standby_replica ctrl ~sid) > 0)
         [ 0; 1; 2 ]);
    Rvaas.Failover.crash ctrl;
    run_sim s ~until:0.9;
    let tks = Rvaas.Failover.takeovers ctrl in
    check Alcotest.int
      (Printf.sprintf "seed %d: exactly one takeover" seed)
      1 (List.length tks);
    let r = List.hd tks in
    check Alcotest.bool "winner is an armed standby" true
      (r.Rvaas.Failover.winner >= 0 && r.Rvaas.Failover.winner < 3);
    check Alcotest.int "generation 2" 2 r.Rvaas.Failover.generation;
    check Alcotest.bool "service live under the new generation" true
      (Rvaas.Service.live (Workload.Scenario.service s));
    if r.Rvaas.Failover.reconciled_records > 0 then incr reconciling
  done;
  check Alcotest.bool "lagging winners reconciled in-transit frames" true
    (!reconciling >= 6)

let test_lagging_winner_verdict_parity () =
  (* The non-crashed oracle and the crash-during-query run must extract
     the same verdict even when the election ran over lagging
     replicas. *)
  for seed = 1 to 3 do
    let s0 = ha_scenario ~seed ~config:lag_config () in
    run_sim s0 ~until:0.3;
    launch_join s0;
    run_sim s0 ~until:0.4;
    let expected = drive_query s0 in
    check Alcotest.bool "oracle run answers" true (expected <> None);
    let s = ha_scenario ~seed ~config:lag_config () in
    run_sim s ~until:0.3;
    let ctrl = Workload.Scenario.controller s in
    arm_phased ctrl ~seed ~count:3;
    launch_join s;
    run_sim s ~until:0.4;
    let got = drive_query ~crash_offset:0.002 s in
    (match Rvaas.Failover.last_takeover ctrl with
    | None -> Alcotest.fail "no takeover under replica lag"
    | Some r -> check Alcotest.int "generation 2" 2 r.Rvaas.Failover.generation);
    check Alcotest.bool "crashed run answers" true (got <> None);
    check
      (Alcotest.pair Alcotest.int (Alcotest.list Alcotest.string))
      (Printf.sprintf "seed %d: verdict parity under replica lag" seed)
      (Option.get expected) (Option.get got);
    check Alcotest.bool "join attack flagged" true (snd (Option.get got) <> [])
  done

let test_lagging_partitioned_cannot_win () =
  (* A partitioned replica receives nothing and is excluded from the
     claim merge: even as first claimant it must never win, and its
     heal goes through a wholesale resync. *)
  for seed = 1 to 6 do
    let s = ha_scenario ~seed ~config:lag_config () in
    run_sim s ~until:0.3;
    let ctrl = Workload.Scenario.controller s in
    Rvaas.Failover.enable_standbys
      ~phase:(fun sid -> if sid = 0 then 0.0 else 0.004)
      ctrl ~count:3;
    run_sim s ~until:0.32;
    Rvaas.Failover.crash ctrl;
    let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
    let deadline = sim_now s +. 0.3 in
    while (not (has_claim_by log ~sid:0)) && sim_now s < deadline do
      run_sim s ~until:(sim_now s +. 0.002)
    done;
    check Alcotest.bool "standby 0 claimed" true (has_claim_by log ~sid:0);
    Rvaas.Failover.partition_standby ctrl ~sid:0;
    check Alcotest.bool "replica tail cut" true
      (Support.Replica.partitioned (Rvaas.Failover.standby_replica ctrl ~sid:0));
    run_sim s ~until:(sim_now s +. 0.4);
    let tks = Rvaas.Failover.takeovers ctrl in
    check Alcotest.int
      (Printf.sprintf "seed %d: healthy standby took over" seed)
      1 (List.length tks);
    check Alcotest.bool "partitioned lagging claimant did not win" true
      ((List.hd tks).Rvaas.Failover.winner <> 0);
    Rvaas.Failover.heal_standby ctrl ~sid:0;
    run_sim s ~until:(sim_now s +. 0.2);
    check Alcotest.bool "healed replica resynced wholesale" true
      (Support.Replica.resyncs (Rvaas.Failover.standby_replica ctrl ~sid:0) >= 1);
    check Alcotest.int "no split brain after the heal" 1
      (List.length (Rvaas.Failover.takeovers ctrl))
  done

let () =
  Alcotest.run "recovery"
    [
      ( "journal",
        [
          Alcotest.test_case "chained checksums and generations" `Quick
            test_journal_chain;
          Alcotest.test_case "codec round-trip" `Quick test_journal_codec_roundtrip;
          Alcotest.test_case "torn writes keep the valid prefix" `Quick
            test_journal_torn_write;
          QCheck_alcotest.to_alcotest prop_journal_any_cut;
        ] );
      ( "snapshot-image",
        [
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_image_rejects_garbage;
        ] );
      ( "typed-journal",
        [ Alcotest.test_case "checkpoint + replay recovery" `Quick test_typed_journal_recovery ] );
      ( "failover",
        [
          Alcotest.test_case "kill the controller" `Quick test_kill_the_controller;
          Alcotest.test_case "partition heals in place" `Quick test_partition_heals;
          Alcotest.test_case "restart replays the journal" `Quick test_restart_replay;
          Alcotest.test_case "live journal image recovers" `Quick
            test_live_journal_image_recovers;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "single winner over 24 seeds" `Quick
            test_quorum_single_winner;
          Alcotest.test_case "partitioned loser heals and rejoins" `Quick
            test_quorum_partitioned_loser_heals;
        ] );
      ( "replica-lag",
        [
          Alcotest.test_case "delayed tail catch-up mechanics" `Quick
            test_replica_catch_up_mechanics;
          Alcotest.test_case "lagging quorum elections over 24 seeds" `Quick
            test_lagging_quorum_elections;
          Alcotest.test_case "lagging winner verdict parity" `Quick
            test_lagging_winner_verdict_parity;
          Alcotest.test_case "partitioned lagging claimant cannot win" `Quick
            test_lagging_partitioned_cannot_win;
        ] );
    ]
