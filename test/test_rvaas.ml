(* Unit tests for the RVaaS core: codec, snapshot, verifier, monitor,
   detector and service internals. *)

let check = Alcotest.check

let rng () = Support.Rng.create 21

let width = Hspace.Field.total_width

(* ---- Wire ---- *)

let test_wire_intercepts () =
  let specs = Rvaas.Wire.intercept_specs () in
  check Alcotest.int "two intercept rules" 2 (List.length specs);
  List.iter
    (fun (s : Ofproto.Flow_entry.spec) ->
      check Alcotest.int "priority" Rvaas.Wire.intercept_priority s.priority;
      check Alcotest.bool "to controller" true
        (Ofproto.Action.sends_to_controller s.actions))
    specs;
  check Alcotest.bool "magic ports" true
    (Rvaas.Wire.is_magic_port Rvaas.Wire.request_port
    && Rvaas.Wire.is_magic_port Rvaas.Wire.answer_port
    && not (Rvaas.Wire.is_magic_port 80))

(* ---- Query ---- *)

let test_query_kind_roundtrip () =
  List.iter
    (fun kind ->
      check Alcotest.bool
        ("roundtrip " ^ Rvaas.Query.kind_to_string kind)
        true
        (Rvaas.Query.kind_of_string (Rvaas.Query.kind_to_string kind) = Some kind))
    [
      Rvaas.Query.Reachable_endpoints;
      Rvaas.Query.Sources_reaching_me;
      Rvaas.Query.Isolation;
      Rvaas.Query.Geo;
      Rvaas.Query.Path_length { dst_ip = 12345 };
      Rvaas.Query.Fairness;
      Rvaas.Query.Transfer_summary;
    ];
  check Alcotest.bool "garbage" true (Rvaas.Query.kind_of_string "nope" = None);
  check Alcotest.bool "bad path" true (Rvaas.Query.kind_of_string "path:xyz" = None)

(* ---- Codec ---- *)

let service_kp = Cryptosim.Keys.generate (Support.Rng.create 500) ~owner:"svc-test"

let client_key = Cryptosim.Hmac.key_of_string "client-7"

let lookup_key c = if c = 7 then Some client_key else None

let test_codec_request_roundtrip () =
  let scope = Rvaas.Verifier.dst_ip_hs 0x0A000001 in
  let request =
    {
      Rvaas.Codec.client = 7;
      nonce = "abc123";
      query = Rvaas.Query.make ~scope Rvaas.Query.Isolation;
    }
  in
  let payload =
    Rvaas.Codec.encode_request request ~key:client_key
      ~recipient:(Cryptosim.Keys.public service_kp)
  in
  match Rvaas.Codec.decode_request payload ~keypair:service_kp ~lookup_key with
  | Error e -> Alcotest.fail e
  | Ok decoded ->
    check Alcotest.int "client" 7 decoded.client;
    check Alcotest.string "nonce" "abc123" decoded.nonce;
    check Alcotest.bool "kind" true (decoded.query.kind = Rvaas.Query.Isolation);
    (match decoded.query.scope with
    | Some hs -> check Alcotest.bool "scope preserved" true (Hspace.Hs.equal hs scope)
    | None -> Alcotest.fail "scope lost")

let test_codec_request_rejects_unknown_client () =
  let request =
    { Rvaas.Codec.client = 9; nonce = "n"; query = Rvaas.Query.make Rvaas.Query.Geo }
  in
  let payload =
    Rvaas.Codec.encode_request request
      ~key:(Cryptosim.Hmac.key_of_string "other")
      ~recipient:(Cryptosim.Keys.public service_kp)
  in
  check Alcotest.bool "unknown client rejected" true
    (Result.is_error (Rvaas.Codec.decode_request payload ~keypair:service_kp ~lookup_key))

let test_codec_request_rejects_bad_mac () =
  let request =
    { Rvaas.Codec.client = 7; nonce = "n"; query = Rvaas.Query.make Rvaas.Query.Geo }
  in
  (* Encode with a key that is not client 7's registered key. *)
  let payload =
    Rvaas.Codec.encode_request request
      ~key:(Cryptosim.Hmac.key_of_string "stolen")
      ~recipient:(Cryptosim.Keys.public service_kp)
  in
  match Rvaas.Codec.decode_request payload ~keypair:service_kp ~lookup_key with
  | Error e -> check Alcotest.string "mac error" "bad client mac" e
  | Ok _ -> Alcotest.fail "forged request accepted"

let test_codec_request_rejects_wrong_recipient () =
  let other = Cryptosim.Keys.generate (rng ()) ~owner:"other-svc" in
  let request =
    { Rvaas.Codec.client = 7; nonce = "n"; query = Rvaas.Query.make Rvaas.Query.Geo }
  in
  let payload =
    Rvaas.Codec.encode_request request ~key:client_key
      ~recipient:(Cryptosim.Keys.public other)
  in
  check Alcotest.bool "sealed to other service" true
    (Result.is_error (Rvaas.Codec.decode_request payload ~keypair:service_kp ~lookup_key))

let test_codec_auth_roundtrip () =
  let payload = Rvaas.Codec.encode_auth_request ~challenge:"ch-1" ~signer:service_kp in
  (match
     Rvaas.Codec.decode_auth_request payload
       ~service_public:(Cryptosim.Keys.public service_kp)
   with
  | Ok c -> check Alcotest.string "challenge" "ch-1" c
  | Error e -> Alcotest.fail e);
  let reply = Rvaas.Codec.encode_auth_reply ~client:7 ~challenge:"ch-1" ~key:client_key in
  match Rvaas.Codec.decode_auth_reply reply ~lookup_key with
  | Ok { reply_client; challenge } ->
    check Alcotest.int "client" 7 reply_client;
    check Alcotest.string "challenge" "ch-1" challenge
  | Error e -> Alcotest.fail e

let test_codec_auth_request_forged_sig () =
  let evil = Cryptosim.Keys.generate (rng ()) ~owner:"evil" in
  let payload = Rvaas.Codec.encode_auth_request ~challenge:"ch" ~signer:evil in
  check Alcotest.bool "forged auth request rejected" true
    (Result.is_error
       (Rvaas.Codec.decode_auth_request payload
          ~service_public:(Cryptosim.Keys.public service_kp)))

let sample_answer =
  {
    Rvaas.Query.nonce = "n-42";
    kind = Rvaas.Query.Isolation;
    endpoints =
      [
        { Rvaas.Query.sw = 1; port = 2; ip = Some 99; authenticated = true; client = Some 0 };
        { Rvaas.Query.sw = 3; port = 0; ip = None; authenticated = false; client = None };
      ];
    total_auth_requests = 2;
    auth_replies = 1;
    auth_attempts = 3;
    degraded = true;
    jurisdictions = [ "EU"; "US" ];
    path_hops = Some (4, 3);
    meters = [ (5, 100) ];
    transfer = [ (1, 2, Rvaas.Verifier.dst_ip_hs 99) ];
    snapshot_age = 0.25;
    throttled = false;
  }

let test_codec_answer_roundtrip () =
  let payload = Rvaas.Codec.encode_answer sample_answer ~signer:service_kp in
  match
    Rvaas.Codec.decode_answer payload ~service_public:(Cryptosim.Keys.public service_kp)
  with
  | Error e -> Alcotest.fail e
  | Ok a ->
    check Alcotest.string "nonce" "n-42" a.nonce;
    check Alcotest.int "endpoints" 2 (List.length a.endpoints);
    check Alcotest.int "total auth" 2 a.total_auth_requests;
    check Alcotest.int "replies" 1 a.auth_replies;
    check Alcotest.int "attempts" 3 a.auth_attempts;
    check Alcotest.bool "degraded" true a.degraded;
    check (Alcotest.list Alcotest.string) "jurisdictions" [ "EU"; "US" ] a.jurisdictions;
    check Alcotest.bool "path" true (a.path_hops = Some (4, 3));
    check Alcotest.bool "meters" true (a.meters = [ (5, 100) ]);
    (match a.transfer with
    | [ (1, 2, hs) ] ->
      check Alcotest.bool "transfer hs preserved" true
        (Hspace.Hs.equal hs (Rvaas.Verifier.dst_ip_hs 99))
    | _ -> Alcotest.fail "transfer section lost");
    check (Alcotest.float 1e-6) "age" 0.25 a.snapshot_age;
    (match a.endpoints with
    | [ e1; e2 ] ->
      check Alcotest.bool "endpoint 1" true
        (e1.sw = 1 && e1.port = 2 && e1.ip = Some 99 && e1.authenticated
       && e1.client = Some 0);
      check Alcotest.bool "endpoint 2" true
        (e2.sw = 3 && e2.port = 0 && e2.ip = None && not e2.authenticated)
    | _ -> Alcotest.fail "endpoint count")

let test_codec_answer_tamper_detected () =
  let payload = Rvaas.Codec.encode_answer sample_answer ~signer:service_kp in
  (* Flip a character in the body (the replies count line). *)
  let needle = "replies=1" in
  let idx =
    let rec find i =
      if i + String.length needle > String.length payload then
        Alcotest.fail "needle not found"
      else if String.sub payload i (String.length needle) = needle then i
      else find (i + 1)
    in
    find 0
  in
  let tampered =
    String.mapi
      (fun i c -> if i = idx + String.length needle - 1 then '2' else c)
      payload
  in
  check Alcotest.bool "tampered answer rejected" true
    (Result.is_error
       (Rvaas.Codec.decode_answer tampered
          ~service_public:(Cryptosim.Keys.public service_kp)))

(* ---- codec robustness: malformed inputs never crash, never pass ---- *)

let test_codec_fuzz_garbage () =
  let rng = Support.Rng.create 808 in
  for _ = 1 to 500 do
    let len = Support.Rng.int rng 200 in
    let garbage =
      String.init len (fun _ -> Char.chr (Support.Rng.int rng 256))
    in
    check Alcotest.bool "garbage request rejected" true
      (Result.is_error
         (Rvaas.Codec.decode_request garbage ~keypair:service_kp ~lookup_key));
    check Alcotest.bool "garbage auth request rejected" true
      (Result.is_error
         (Rvaas.Codec.decode_auth_request garbage
            ~service_public:(Cryptosim.Keys.public service_kp)));
    check Alcotest.bool "garbage auth reply rejected" true
      (Result.is_error (Rvaas.Codec.decode_auth_reply garbage ~lookup_key));
    check Alcotest.bool "garbage answer rejected" true
      (Result.is_error
         (Rvaas.Codec.decode_answer garbage
            ~service_public:(Cryptosim.Keys.public service_kp)))
  done

let test_codec_truncation_rejected () =
  (* Every strict prefix of a valid answer must fail verification. *)
  let payload = Rvaas.Codec.encode_answer sample_answer ~signer:service_kp in
  let n = String.length payload in
  List.iter
    (fun k ->
      let truncated = String.sub payload 0 k in
      check Alcotest.bool "truncated rejected" true
        (Result.is_error
           (Rvaas.Codec.decode_answer truncated
              ~service_public:(Cryptosim.Keys.public service_kp))))
    [ 0; 1; n / 4; n / 2; n - 1 ]

(* Freshness must be explicit: an answer whose age line is missing or
   unparseable is a decode error even under a valid signature —
   regression for the silent [age = 0.0] default. *)
let sign_body body = body ^ "\n" ^ "sig=" ^ Cryptosim.Keys.sign service_kp body

let test_codec_answer_missing_age () =
  let base =
    [ "nonce=n1"; "kind=" ^ Rvaas.Query.kind_to_string Rvaas.Query.Isolation;
      "total_auth=0"; "replies=0" ]
  in
  let decode lines =
    Rvaas.Codec.decode_answer
      (sign_body (String.concat "\n" lines))
      ~service_public:(Cryptosim.Keys.public service_kp)
  in
  (match decode base with
  | Error "missing or malformed answer age" -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ e)
  | Ok _ -> Alcotest.fail "missing age accepted");
  (match decode (base @ [ "age=fresh" ]) with
  | Error "missing or malformed answer age" -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ e)
  | Ok _ -> Alcotest.fail "malformed age accepted");
  (* Control: the same body with a well-formed age decodes. *)
  match decode (base @ [ "age=0.125000000" ]) with
  | Error e -> Alcotest.fail e
  | Ok a ->
    check (Alcotest.float 1e-9) "age parsed" 0.125 a.snapshot_age;
    (* Pre-retry answers carry no attempts/degraded lines: the count
       defaults to one attempt per probe and a clean verdict. *)
    check Alcotest.int "attempts default" a.total_auth_requests a.auth_attempts;
    check Alcotest.bool "degraded default" false a.degraded

(* ---- qcheck: codec round-trips ---- *)

let short_string_gen =
  QCheck2.Gen.(
    string_size ~gen:(oneofl [ 'a'; 'b'; 'z'; '0'; '7'; '-'; '.' ]) (int_range 1 12))

let kind_gen =
  QCheck2.Gen.(
    let* dst_ip = int_range 0 0xFFFF in
    oneofl
      Rvaas.Query.
        [
          Isolation; Geo; Fairness; Reachable_endpoints; Sources_reaching_me;
          Transfer_summary; Path_length { dst_ip };
        ])

let endpoint_gen =
  QCheck2.Gen.(
    let* sw = int_range 0 99 and* port = int_range 0 15 in
    let* ip = option (int_range 0 0xFFFF) and* authenticated = bool in
    let* client = option (int_range 0 7) in
    return { Rvaas.Query.sw; port; ip; authenticated; client })

let answer_gen =
  QCheck2.Gen.(
    let* nonce = short_string_gen and* kind = kind_gen in
    let* endpoints = list_size (int_range 0 4) endpoint_gen in
    let* total_auth_requests = int_range 0 50 and* auth_replies = int_range 0 50 in
    let* auth_attempts = int_range 0 200 and* degraded = bool in
    let* jurisdictions = list_size (int_range 0 3) short_string_gen in
    let* path_hops = option (pair (int_range 0 30) (int_range 0 30)) in
    let* meters = list_size (int_range 0 3) (pair (int_range 0 9) (int_range 0 10_000)) in
    let* cells = list_size (int_range 0 3) (pair (pair (int_range 0 9) (int_range 0 3)) (int_range 0 0xFFFF)) in
    (* decode returns transfer sorted and grouped by (sw, port): feed it
       distinct sorted keys so equality is exact. *)
    let transfer =
      List.map
        (fun ((sw, port), ip) -> (sw, port, Rvaas.Verifier.dst_ip_hs ip))
        (List.sort_uniq (fun (k, _) (k', _) -> compare k k') cells)
    in
    let* age_ns = int_range 0 1_000_000_000 in
    let* throttled = bool in
    return
      {
        Rvaas.Query.nonce; kind; endpoints; total_auth_requests; auth_replies;
        auth_attempts; degraded; jurisdictions; path_hops; meters; transfer;
        snapshot_age = float_of_int age_ns /. 1e6; throttled;
      })

let answer_equal (a : Rvaas.Query.answer) (b : Rvaas.Query.answer) =
  a.nonce = b.nonce && a.kind = b.kind && a.endpoints = b.endpoints
  && a.total_auth_requests = b.total_auth_requests
  && a.auth_replies = b.auth_replies
  && a.auth_attempts = b.auth_attempts
  && a.degraded = b.degraded
  && a.throttled = b.throttled
  && a.jurisdictions = b.jurisdictions
  && a.path_hops = b.path_hops && a.meters = b.meters
  && List.length a.transfer = List.length b.transfer
  && List.for_all2
       (fun (sw, port, hs) (sw', port', hs') ->
         sw = sw' && port = port' && Hspace.Hs.equal hs hs')
       a.transfer b.transfer
  && Float.abs (a.snapshot_age -. b.snapshot_age) < 1e-6

let prop_answer_roundtrip =
  QCheck2.Test.make ~name:"answer encode-decode identity" ~count:300 answer_gen
    (fun a ->
      match
        Rvaas.Codec.decode_answer
          (Rvaas.Codec.encode_answer a ~signer:service_kp)
          ~service_public:(Cryptosim.Keys.public service_kp)
      with
      | Error _ -> false
      | Ok a' -> answer_equal a a')

let prop_request_roundtrip =
  QCheck2.Test.make ~name:"request encode-decode identity" ~count:300
    QCheck2.Gen.(
      let* client = int_range 0 1000 and* nonce = short_string_gen in
      let* kind = kind_gen and* scope_ip = option (int_range 0 0xFFFF) in
      return (client, nonce, kind, scope_ip))
    (fun (client, nonce, kind, scope_ip) ->
      let query =
        { Rvaas.Query.kind; scope = Option.map Rvaas.Verifier.dst_ip_hs scope_ip }
      in
      let payload =
        Rvaas.Codec.encode_request { Rvaas.Codec.client; nonce; query }
          ~key:client_key ~recipient:(Cryptosim.Keys.public service_kp)
      in
      match
        Rvaas.Codec.decode_request payload ~keypair:service_kp
          ~lookup_key:(fun _ -> Some client_key)
      with
      | Error _ -> false
      | Ok r ->
        r.client = client && r.nonce = nonce && r.query.kind = kind
        && (match r.query.scope, query.scope with
           | None, None -> true
           | Some a, Some b -> Hspace.Hs.equal a b
           | _ -> false))

let prop_auth_roundtrip =
  QCheck2.Test.make ~name:"auth request/reply encode-decode identity" ~count:300
    QCheck2.Gen.(
      let* challenge = short_string_gen and* client = int_range 0 1000 in
      return (challenge, client))
    (fun (challenge, client) ->
      let req =
        Rvaas.Codec.decode_auth_request
          (Rvaas.Codec.encode_auth_request ~challenge ~signer:service_kp)
          ~service_public:(Cryptosim.Keys.public service_kp)
      in
      let reply =
        Rvaas.Codec.decode_auth_reply
          (Rvaas.Codec.encode_auth_reply ~client ~challenge ~key:client_key)
          ~lookup_key:(fun _ -> Some client_key)
      in
      req = Ok challenge
      && reply = Ok { Rvaas.Codec.reply_client = client; challenge })

(* ---- Snapshot ---- *)

let spec ~priority ~dst_ip =
  Ofproto.Flow_entry.make_spec ~priority
    (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst dst_ip)
    [ Ofproto.Action.Output 1 ]

let test_snapshot_events () =
  let s = Rvaas.Snapshot.create () in
  Rvaas.Snapshot.apply_event s ~sw:1 ~now:1.0
    (Ofproto.Message.Flow_added (spec ~priority:1 ~dst_ip:5));
  Rvaas.Snapshot.apply_event s ~sw:1 ~now:2.0
    (Ofproto.Message.Flow_added (spec ~priority:2 ~dst_ip:6));
  check Alcotest.int "two flows" 2 (List.length (Rvaas.Snapshot.flows s ~sw:1));
  Rvaas.Snapshot.apply_event s ~sw:1 ~now:3.0
    (Ofproto.Message.Flow_deleted (spec ~priority:1 ~dst_ip:5));
  check Alcotest.int "one left" 1 (List.length (Rvaas.Snapshot.flows s ~sw:1));
  check (Alcotest.float 1e-9) "refresh time" 3.0 (Rvaas.Snapshot.last_refresh s ~sw:1)

let test_snapshot_replace () =
  let s = Rvaas.Snapshot.create () in
  Rvaas.Snapshot.apply_event s ~sw:0 ~now:1.0
    (Ofproto.Message.Flow_added (spec ~priority:1 ~dst_ip:5));
  Rvaas.Snapshot.replace_flows s ~sw:0 ~now:2.0 [ spec ~priority:9 ~dst_ip:9 ];
  (match Rvaas.Snapshot.flows s ~sw:0 with
  | [ only ] -> check Alcotest.int "replaced" 9 only.priority
  | _ -> Alcotest.fail "expected exactly the polled rule");
  check Alcotest.int "total" 1 (Rvaas.Snapshot.total_flows s)

let test_snapshot_digest_and_divergence () =
  let a = Rvaas.Snapshot.create () and b = Rvaas.Snapshot.create () in
  Rvaas.Snapshot.replace_flows a ~sw:0 ~now:1.0 [ spec ~priority:1 ~dst_ip:5 ];
  Rvaas.Snapshot.replace_flows b ~sw:0 ~now:5.0 [ spec ~priority:1 ~dst_ip:5 ];
  check Alcotest.bool "equal configs equal digests" true
    (Int64.equal (Rvaas.Snapshot.digest a) (Rvaas.Snapshot.digest b));
  Rvaas.Snapshot.replace_flows b ~sw:0 ~now:6.0 [ spec ~priority:2 ~dst_ip:5 ];
  check Alcotest.bool "different configs different digests" false
    (Int64.equal (Rvaas.Snapshot.digest a) (Rvaas.Snapshot.digest b));
  let actual sw = if sw = 0 then [ spec ~priority:1 ~dst_ip:5 ] else [] in
  check Alcotest.int "a matches actual" 0 (Rvaas.Snapshot.divergence a ~actual);
  check Alcotest.int "b diverges" 1 (Rvaas.Snapshot.divergence b ~actual)

let test_snapshot_age () =
  let s = Rvaas.Snapshot.create () in
  Rvaas.Snapshot.replace_flows s ~sw:0 ~now:1.0 [];
  Rvaas.Snapshot.replace_flows s ~sw:1 ~now:3.0 [];
  check (Alcotest.float 1e-9) "age is oldest refresh" 4.0 (Rvaas.Snapshot.age s ~now:5.0)

(* ---- Directory ---- *)

let test_directory_basics () =
  let d = Rvaas.Directory.create () in
  let key0 = Cryptosim.Hmac.key_of_string "k0" in
  Rvaas.Directory.register d
    {
      Rvaas.Directory.client = 0;
      name = "alice";
      key = key0;
      hosts = [ (10, 0x0A000001); (11, 0x0A000002) ];
      subnet = Some (0x0A000000, 16);
    };
  Rvaas.Directory.register d
    {
      Rvaas.Directory.client = 1;
      name = "bob";
      key = Cryptosim.Hmac.key_of_string "k1";
      hosts = [ (12, 0x0A010001) ];
      subnet = Some (0x0A010000, 16);
    };
  check (Alcotest.list Alcotest.int) "clients" [ 0; 1 ] (Rvaas.Directory.clients d);
  check Alcotest.bool "key lookup" true (Rvaas.Directory.key d ~client:0 = Some key0);
  check Alcotest.bool "unknown client" true (Rvaas.Directory.key d ~client:9 = None);
  check Alcotest.bool "host ip" true (Rvaas.Directory.host_ip d ~host:11 = Some 0x0A000002);
  check Alcotest.bool "unknown host" true (Rvaas.Directory.host_ip d ~host:99 = None);
  check Alcotest.bool "owner" true (Rvaas.Directory.client_of_host d ~host:12 = Some 1);
  (* Re-registration replaces. *)
  Rvaas.Directory.register d
    {
      Rvaas.Directory.client = 0;
      name = "alice2";
      key = key0;
      hosts = [ (10, 0x0A000001) ];
      subnet = None;
    };
  check Alcotest.bool "replaced record" true
    (match Rvaas.Directory.find d ~client:0 with
    | Some r -> r.name = "alice2" && List.length r.hosts = 1
    | None -> false)

(* ---- Monitor history capacity ---- *)

let test_monitor_history_bounded () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 2 in
  let net = Netsim.Net.create ~seed:1 topo in
  let monitor =
    Rvaas.Monitor.create net ~conn_delay:1e-3 ~history_capacity:10
      ~polling:Rvaas.Monitor.No_polling ()
  in
  (* Generate 50 observations via a second controller's flow-mods. *)
  let other = Netsim.Net.register_controller net ~name:"p" ~delay:1e-3 () in
  Netsim.Net.attach net other ~sw:0 ~monitor:false;
  for i = 1 to 25 do
    let m = Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Tp_src i in
    Netsim.Net.send net other ~sw:0
      (Ofproto.Message.Flow_mod
         (Ofproto.Message.Add_flow (Ofproto.Flow_entry.make_spec ~priority:i m [])));
    Netsim.Net.send net other ~sw:0
      (Ofproto.Message.Flow_mod
         (Ofproto.Message.Delete_flow { match_ = m; priority = Some i }))
  done;
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "history bounded to capacity" 10
    (List.length (Rvaas.Monitor.history monitor));
  check Alcotest.int "but all events were seen" 50
    (Rvaas.Monitor.events_seen monitor)

(* ---- Verifier on a hand-built network ---- *)

(* h0 - s0 - s1 - h1, with an extra host h2 on s1 port 2. *)
let verifier_fixture () =
  let t = Netsim.Topology.create () in
  List.iter (Netsim.Topology.add_switch t) [ 0; 1 ];
  List.iter (Netsim.Topology.add_host t) [ 0; 1; 2 ];
  let ep node port = Netsim.Topology.{ node; port } in
  Netsim.Topology.connect t (ep (Netsim.Topology.Host 0) 0) (ep (Netsim.Topology.Switch 0) 0)
    ~delay:1e-3;
  Netsim.Topology.connect t (ep (Netsim.Topology.Switch 0) 1)
    (ep (Netsim.Topology.Switch 1) 1) ~delay:1e-3;
  Netsim.Topology.connect t (ep (Netsim.Topology.Host 1) 0) (ep (Netsim.Topology.Switch 1) 0)
    ~delay:1e-3;
  Netsim.Topology.connect t (ep (Netsim.Topology.Host 2) 0) (ep (Netsim.Topology.Switch 1) 2)
    ~delay:1e-3;
  t

let test_verifier_basic_reach () =
  let topo = verifier_fixture () in
  let flows_of = function
    | 0 -> [ spec ~priority:1 ~dst_ip:42 ] (* out port 1 -> s1 *)
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [ Ofproto.Action.Output 0 ];
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  (match r.endpoints with
  | [ (ep, hs) ] ->
    check Alcotest.int "reaches host 1" 1 ep.host;
    check Alcotest.bool "arriving space nonempty" false (Hspace.Hs.is_empty hs)
  | eps -> Alcotest.fail (Printf.sprintf "expected one endpoint, got %d" (List.length eps)));
  check (Alcotest.list Alcotest.int) "traversed" [ 0; 1 ] r.traversed;
  match r.sample_paths with
  | [ (_, path) ] -> check (Alcotest.list Alcotest.int) "witness path" [ 0; 1 ] path
  | _ -> Alcotest.fail "expected one witness path"

let test_verifier_priority_shadowing () =
  let topo = verifier_fixture () in
  (* A higher-priority drop shadows the forward rule entirely. *)
  let flows_of = function
    | 0 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:10
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [];
        spec ~priority:1 ~dst_ip:42;
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  check Alcotest.int "nothing reachable" 0 (List.length r.endpoints)

let test_verifier_partial_shadowing () =
  let topo = verifier_fixture () in
  (* Drop only UDP; TCP to the same address still flows. *)
  let flows_of = function
    | 0 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:10
          (Ofproto.Match_.with_exact
             (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
             Hspace.Field.Ip_proto Hspace.Header.proto_udp)
          [];
        spec ~priority:1 ~dst_ip:42;
      ]
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [ Ofproto.Action.Output 0 ];
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  match r.endpoints with
  | [ (ep, hs) ] ->
    check Alcotest.int "still reaches host 1" 1 ep.host;
    (* The arriving space excludes UDP. *)
    let udp_cube =
      Hspace.Field.set_exact (Hspace.Tern.all_x width) Hspace.Field.Ip_proto
        Hspace.Header.proto_udp
    in
    check Alcotest.bool "UDP excluded" false
      (Hspace.Hs.overlaps hs (Hspace.Hs.of_cube udp_cube))
  | _ -> Alcotest.fail "expected one endpoint"

let test_verifier_rewrite_tracked () =
  let topo = verifier_fixture () in
  let flows_of = function
    | 0 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [ Ofproto.Action.Set_field (Hspace.Field.Ip_dst, 43); Ofproto.Action.Output 1 ];
      ]
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 43)
          [ Ofproto.Action.Output 2 ];
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  match r.endpoints with
  | [ (ep, hs) ] ->
    check Alcotest.int "reaches host 2 after rewrite" 2 ep.host;
    (* Arriving headers have the rewritten address. *)
    (match Hspace.Hs.sample (rng ()) hs with
    | Some v ->
      check Alcotest.bool "dst rewritten" true
        (Hspace.Field.get_exact v Hspace.Field.Ip_dst = Some 43)
    | None -> Alcotest.fail "empty arriving space")
  | _ -> Alcotest.fail "expected endpoint behind rewrite"

let test_verifier_loop_terminates () =
  let topo = verifier_fixture () in
  (* s0 and s1 forward dst 42 to each other forever. *)
  let flows_of = function
    | 0 -> [ spec ~priority:1 ~dst_ip:42 ]
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [ Ofproto.Action.Output 1 ];
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  check Alcotest.int "no endpoint in a loop" 0 (List.length r.endpoints);
  check (Alcotest.list Alcotest.int) "both switches traversed" [ 0; 1 ] r.traversed

let test_verifier_flood () =
  let topo = verifier_fixture () in
  let flows_of = function
    | 0 ->
      [ Ofproto.Flow_entry.make_spec ~priority:1 Ofproto.Match_.any [ Ofproto.Action.Flood ] ]
    | 1 ->
      [ Ofproto.Flow_entry.make_spec ~priority:1 Ofproto.Match_.any [ Ofproto.Action.Flood ] ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  let hosts = List.map (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.host) r.endpoints in
  check (Alcotest.list Alcotest.int) "flood reaches h1 h2 (not back to h0)" [ 1; 2 ] hosts

let test_verifier_in_port_rules () =
  let topo = verifier_fixture () in
  (* Rule only applies to ingress port 1 on s1, not port 0. *)
  let flows_of = function
    | 0 -> [ spec ~priority:1 ~dst_ip:42 ]
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_in_port
             (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
             1)
          [ Ofproto.Action.Output 0 ];
      ]
    | _ -> []
  in
  let r =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  check Alcotest.int "port-matched rule fires" 1 (List.length r.endpoints);
  (* From host 1's port the rule does not apply: nothing reaches. *)
  let r2 =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:1 ~src_port:0
      ~hs:(Rvaas.Verifier.dst_ip_hs 42)
  in
  check Alcotest.int "other ingress blocked" 0 (List.length r2.endpoints)

let test_verifier_access_points () =
  let topo = verifier_fixture () in
  let points = Rvaas.Verifier.access_points topo in
  check Alcotest.int "three access points" 3 (List.length points)

let test_verifier_sources_reaching () =
  let topo = verifier_fixture () in
  let flows_of = function
    | 0 -> [ spec ~priority:1 ~dst_ip:42 ]
    | 1 ->
      [
        Ofproto.Flow_entry.make_spec ~priority:1
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          [ Ofproto.Action.Output 0 ];
      ]
    | _ -> []
  in
  let dst = { Rvaas.Verifier.host = 1; sw = 1; port = 0 } in
  let sources =
    Rvaas.Verifier.sources_reaching ~flows_of topo ~dst ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  let hosts = List.map (fun ((s : Rvaas.Verifier.endpoint), _) -> s.host) sources in
  (* Host 0 reaches via s0; host 2 reaches via s1's local rule. *)
  check (Alcotest.list Alcotest.int) "sources" [ 0; 2 ] (List.sort compare hosts)

(* ---- differential: optimised verifier ≡ reference verifier ---- *)

let test_verifier_matches_reference () =
  for trial = 1 to 6 do
    let p = Workload.Topogen.default_params in
    let topo =
      match trial mod 3 with
      | 0 -> Workload.Topogen.linear p 3
      | 1 -> Workload.Topogen.ring p 4
      | _ -> Workload.Topogen.grid p ~rows:2 ~cols:2
    in
    let s =
      Workload.Scenario.build
        {
          (Workload.Scenario.default_spec topo) with
          clients = 1 + (trial mod 2);
          seed = 100 + trial;
        }
    in
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
    let flows_of = Workload.Scenario.actual_flows s in
    let hs =
      if trial mod 2 = 0 then Rvaas.Verifier.ip_traffic_hs ()
      else
        let info = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
        Rvaas.Verifier.dst_ip_hs info.ip
    in
    List.iter
      (fun (ep : Rvaas.Verifier.endpoint) ->
        let fast =
          Rvaas.Verifier.reach ~flows_of topo ~src_sw:ep.sw ~src_port:ep.port ~hs
        in
        let slow =
          Rvaas.Verifier_ref.reach ~flows_of topo ~src_sw:ep.sw ~src_port:ep.port ~hs
        in
        let hosts r =
          List.map (fun ((e : Rvaas.Verifier.endpoint), _) -> e) r.Rvaas.Verifier.endpoints
        in
        check Alcotest.bool
          (Printf.sprintf "trial %d: same endpoints" trial)
          true
          (hosts fast = hosts slow);
        check (Alcotest.list Alcotest.int)
          (Printf.sprintf "trial %d: same traversal" trial)
          slow.Rvaas.Verifier.traversed fast.Rvaas.Verifier.traversed;
        (* Arriving header spaces agree semantically per endpoint. *)
        List.iter2
          (fun (_, hs_fast) (_, hs_slow) ->
            check Alcotest.bool
              (Printf.sprintf "trial %d: same arriving space" trial)
              true
              (Hspace.Hs.equal hs_fast hs_slow))
          fast.Rvaas.Verifier.endpoints slow.Rvaas.Verifier.endpoints;
        (* Controller slices agree semantically too. *)
        check Alcotest.bool
          (Printf.sprintf "trial %d: same controller switches" trial)
          true
          (List.map fst fast.Rvaas.Verifier.controller_hits
          = List.map fst slow.Rvaas.Verifier.controller_hits);
        List.iter2
          (fun (_, a) (_, b) ->
            check Alcotest.bool
              (Printf.sprintf "trial %d: same controller space" trial)
              true (Hspace.Hs.equal a b))
          fast.Rvaas.Verifier.controller_hits slow.Rvaas.Verifier.controller_hits)
      (Rvaas.Verifier.access_points topo)
  done

(* ---- Detector ---- *)

let test_detector_answer_alarms () =
  let policy =
    {
      (Rvaas.Detector.default_policy ~own_points:[ (1, 2) ]) with
      forbidden_jurisdictions = [ "RU" ];
      min_rate_kbps = Some 1000;
      max_path_stretch = 1.2;
    }
  in
  let answer =
    {
      sample_answer with
      Rvaas.Query.endpoints =
        [
          { Rvaas.Query.sw = 1; port = 2; ip = None; authenticated = true; client = Some 0 };
          { Rvaas.Query.sw = 9; port = 9; ip = None; authenticated = false; client = None };
        ];
      jurisdictions = [ "EU"; "RU" ];
      path_hops = Some (5, 3);
      meters = [ (1, 500) ];
      total_auth_requests = 2;
      auth_replies = 1;
    }
  in
  let alarms = Rvaas.Detector.check_answer policy answer in
  let has f = List.exists f alarms in
  check Alcotest.bool "unknown point" true
    (has (function Rvaas.Detector.Unknown_access_point { sw = 9; _ } -> true | _ -> false));
  check Alcotest.bool "unauthenticated" true
    (has (function Rvaas.Detector.Unauthenticated_endpoint _ -> true | _ -> false));
  check Alcotest.bool "missing replies" true
    (has (function Rvaas.Detector.Missing_replies _ -> true | _ -> false));
  check Alcotest.bool "forbidden jurisdiction" true
    (has (function Rvaas.Detector.Forbidden_jurisdiction "RU" -> true | _ -> false));
  check Alcotest.bool "path stretch" true
    (has (function Rvaas.Detector.Path_stretch _ -> true | _ -> false));
  check Alcotest.bool "throttled" true
    (has (function Rvaas.Detector.Throttled _ -> true | _ -> false))

let test_detector_clean_answer () =
  let policy = Rvaas.Detector.default_policy ~own_points:[ (1, 2) ] in
  let answer =
    {
      sample_answer with
      Rvaas.Query.endpoints =
        [ { Rvaas.Query.sw = 1; port = 2; ip = None; authenticated = true; client = Some 0 } ];
      jurisdictions = [];
      path_hops = None;
      meters = [];
      total_auth_requests = 1;
      auth_replies = 1;
    }
  in
  check Alcotest.int "no alarms" 0
    (List.length (Rvaas.Detector.check_answer policy answer))

let test_detector_history_drift () =
  let base_spec = spec ~priority:1 ~dst_ip:5 in
  let baseline = Rvaas.Detector.baseline_of_flows [ (0, [ base_spec ]) ] in
  let evil_spec = spec ~priority:400 ~dst_ip:5 in
  let entries =
    [
      { Rvaas.Monitor.at = 1.0; sw = 0; what = Rvaas.Monitor.Event (Ofproto.Message.Flow_added base_spec) };
      { Rvaas.Monitor.at = 2.0; sw = 0; what = Rvaas.Monitor.Event (Ofproto.Message.Flow_added evil_spec) };
      { Rvaas.Monitor.at = 3.0; sw = 0; what = Rvaas.Monitor.Event (Ofproto.Message.Flow_deleted base_spec) };
    ]
  in
  let alarms = Rvaas.Detector.check_history baseline entries in
  check Alcotest.int "two drift alarms" 2 (List.length alarms);
  match alarms with
  | [ Rvaas.Detector.Config_drift { at = a1; _ }; Rvaas.Detector.Config_drift { at = a2; _ } ]
    ->
    check (Alcotest.float 1e-9) "first drift at t=2" 2.0 a1;
    check (Alcotest.float 1e-9) "second drift at t=3" 3.0 a2
  | _ -> Alcotest.fail "expected drift alarms"

(* ---- Monitor + Service over a live scenario ---- *)

let scenario () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 2 }

let test_monitor_snapshot_converges () =
  let s = scenario () in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.5);
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  check Alcotest.int "snapshot matches every switch" 0
    (Rvaas.Snapshot.divergence snapshot ~actual:(Workload.Scenario.actual_flows s));
  check Alcotest.bool "monitor saw events" true (Rvaas.Monitor.events_seen s.monitor > 0);
  check Alcotest.bool "monitor polled" true (Rvaas.Monitor.polls_sent s.monitor > 0)

let test_monitor_periodic_vs_none () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 2 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with polling = Rvaas.Monitor.No_polling }
  in
  Workload.Scenario.run s ~until:1.0;
  check Alcotest.int "no polls without polling" 0 (Rvaas.Monitor.polls_sent s.monitor)

let test_service_evaluate_isolation () =
  let s = scenario () in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  (* Host 0 (client 0) at its attachment. *)
  let topo = Netsim.Net.topology s.net in
  let att = Option.get (Netsim.Topology.host_attachment topo 0) in
  let sw = match att.Netsim.Topology.node with
    | Netsim.Topology.Switch sw -> sw
    | _ -> Alcotest.fail "bad attachment"
  in
  let _answer, probes =
    Rvaas.Service.evaluate s.service ~client:0 ~sw ~port:att.Netsim.Topology.port
      (Rvaas.Query.make Rvaas.Query.Isolation)
  in
  (* Client 0 owns hosts 0 and 2; each can reach the other: the probe
     set is exactly the client's own points. *)
  let hosts = List.sort compare (List.map (fun (p : Rvaas.Verifier.endpoint) -> p.host) probes) in
  check (Alcotest.list Alcotest.int) "probe targets" [ 0; 2 ] hosts

let test_service_attestation () =
  let s = scenario () in
  let quote = Rvaas.Service.attest s.service ~nonce:"n-7" in
  let agent = Workload.Scenario.agent s ~host:0 in
  check Alcotest.bool "client verifies genuine service" true
    (Rvaas.Client_agent.verify_service agent ~quote ~nonce:"n-7"
       ~expected:(Cryptosim.Attest.measure ~code_identity:Rvaas.Service.code_identity));
  check Alcotest.bool "wrong nonce rejected" false
    (Rvaas.Client_agent.verify_service agent ~quote ~nonce:"n-8"
       ~expected:(Rvaas.Service.measurement s.service))

let test_service_rejects_forged_request () =
  let s = scenario () in
  (* Craft a request with a wrong client key and inject it. *)
  let before = (Rvaas.Service.stats s.service).queries_rejected in
  let payload =
    Rvaas.Codec.encode_request
      { Rvaas.Codec.client = 0; nonce = "n"; query = Rvaas.Query.make Rvaas.Query.Geo }
      ~key:(Cryptosim.Hmac.key_of_string "wrong-key")
      ~recipient:(Rvaas.Service.public s.service)
  in
  let info = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
  let header =
    Hspace.Header.udp ~src_ip:info.ip ~dst_ip:Rvaas.Wire.service_ip ~src_port:0
      ~dst_port:Rvaas.Wire.request_port
  in
  Netsim.Net.host_send s.net ~host:0 (Netsim.Packet.make ~header payload);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1);
  check Alcotest.int "rejected" (before + 1) (Rvaas.Service.stats s.service).queries_rejected

(* ---- active wiring verification ---- *)

let test_wiring_verification_confirms () =
  let topo = Workload.Topogen.grid Workload.Topogen.default_params ~rows:2 ~cols:2 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  let report = ref None in
  Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.5 ~on_complete:(fun r ->
      report := Some r);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  match !report with
  | None -> Alcotest.fail "wiring verification never completed"
  | Some r ->
    (* 4 internal links, probed from both ends. *)
    check Alcotest.int "probes" 8 r.probes_sent;
    check Alcotest.int "all confirmed" 8 r.confirmed;
    check Alcotest.int "no misdelivery" 0 (List.length r.misdelivered);
    check Alcotest.int "no missing" 0 (List.length r.missing)

let test_wiring_verification_detects_suppression () =
  (* An attacker deletes the LLDP interception entry on one switch just
     before the probes fly: probes into that switch go unobserved. *)
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  let report = ref None in
  Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.5 ~on_complete:(fun r ->
      report := Some r);
  (* Delete every controller-bound LLDP rule on switch 1 after the
     intercepts have landed but before the probes are emitted. *)
  Netsim.Sim.schedule (Netsim.Net.sim s.net) ~delay:0.01 (fun () ->
      let match_ =
        Ofproto.Match_.with_exact
          (Ofproto.Match_.with_exact
             (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Eth_type
                Hspace.Header.eth_type_ip)
             Hspace.Field.Ip_proto Hspace.Header.proto_udp)
          Hspace.Field.Tp_dst Rvaas.Wire.lldp_port
      in
      Netsim.Net.send s.net
        (Sdnctl.Provider.conn s.provider)
        ~sw:1
        (Ofproto.Message.Flow_mod (Ofproto.Message.Delete_flow { match_; priority = None })));
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  match !report with
  | None -> Alcotest.fail "wiring verification never completed"
  | Some r ->
    (* Probes into sw1 (from sw0 and sw2) disappear. *)
    check Alcotest.int "two probes missing" 2 (List.length r.missing);
    check Alcotest.int "others confirmed" (r.probes_sent - 2) r.confirmed

let () =
  Alcotest.run "rvaas"
    [
      ( "wire",
        [ Alcotest.test_case "intercept specs" `Quick test_wire_intercepts ] );
      ( "query",
        [ Alcotest.test_case "kind roundtrip" `Quick test_query_kind_roundtrip ] );
      ( "codec",
        [
          Alcotest.test_case "request roundtrip" `Quick test_codec_request_roundtrip;
          Alcotest.test_case "unknown client" `Quick test_codec_request_rejects_unknown_client;
          Alcotest.test_case "bad mac" `Quick test_codec_request_rejects_bad_mac;
          Alcotest.test_case "wrong recipient" `Quick test_codec_request_rejects_wrong_recipient;
          Alcotest.test_case "auth roundtrip" `Quick test_codec_auth_roundtrip;
          Alcotest.test_case "forged auth request" `Quick test_codec_auth_request_forged_sig;
          Alcotest.test_case "answer roundtrip" `Quick test_codec_answer_roundtrip;
          Alcotest.test_case "answer tamper" `Quick test_codec_answer_tamper_detected;
          Alcotest.test_case "garbage fuzz" `Quick test_codec_fuzz_garbage;
          Alcotest.test_case "truncation" `Quick test_codec_truncation_rejected;
          Alcotest.test_case "missing age" `Quick test_codec_answer_missing_age;
          QCheck_alcotest.to_alcotest prop_answer_roundtrip;
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_auth_roundtrip;
        ] );
      ( "directory+history",
        [
          Alcotest.test_case "directory" `Quick test_directory_basics;
          Alcotest.test_case "history bounded" `Quick test_monitor_history_bounded;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "events" `Quick test_snapshot_events;
          Alcotest.test_case "replace" `Quick test_snapshot_replace;
          Alcotest.test_case "digest + divergence" `Quick test_snapshot_digest_and_divergence;
          Alcotest.test_case "age" `Quick test_snapshot_age;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "basic reach" `Quick test_verifier_basic_reach;
          Alcotest.test_case "priority shadowing" `Quick test_verifier_priority_shadowing;
          Alcotest.test_case "partial shadowing" `Quick test_verifier_partial_shadowing;
          Alcotest.test_case "rewrite tracked" `Quick test_verifier_rewrite_tracked;
          Alcotest.test_case "loop terminates" `Quick test_verifier_loop_terminates;
          Alcotest.test_case "flood" `Quick test_verifier_flood;
          Alcotest.test_case "in-port rules" `Quick test_verifier_in_port_rules;
          Alcotest.test_case "access points" `Quick test_verifier_access_points;
          Alcotest.test_case "sources reaching" `Quick test_verifier_sources_reaching;
          Alcotest.test_case "matches reference implementation" `Quick
            test_verifier_matches_reference;
        ] );
      ( "detector",
        [
          Alcotest.test_case "answer alarms" `Quick test_detector_answer_alarms;
          Alcotest.test_case "clean answer" `Quick test_detector_clean_answer;
          Alcotest.test_case "history drift" `Quick test_detector_history_drift;
        ] );
      ( "monitor+service",
        [
          Alcotest.test_case "snapshot converges" `Quick test_monitor_snapshot_converges;
          Alcotest.test_case "no polling" `Quick test_monitor_periodic_vs_none;
          Alcotest.test_case "evaluate isolation" `Quick test_service_evaluate_isolation;
          Alcotest.test_case "attestation" `Quick test_service_attestation;
          Alcotest.test_case "forged request rejected" `Quick
            test_service_rejects_forged_request;
          Alcotest.test_case "wiring verification" `Quick test_wiring_verification_confirms;
          Alcotest.test_case "wiring suppression detected" `Quick
            test_wiring_verification_detects_suppression;
        ] );
    ]
