(* Unit tests for addressing, the provider control plane and the attack
   taxonomy's data-plane effects. *)

let check = Alcotest.check

(* ---- Addressing ---- *)

let test_addressing_assignment () =
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"alice";
  Sdnctl.Addressing.add_client a ~client:1 ~name:"bob";
  let h0 = Sdnctl.Addressing.add_host a ~host:10 ~client:0 in
  let h1 = Sdnctl.Addressing.add_host a ~host:11 ~client:0 in
  let h2 = Sdnctl.Addressing.add_host a ~host:12 ~client:1 in
  check Alcotest.int "client 0 first ip" 0x0A000001 h0.ip;
  check Alcotest.int "client 0 second ip" 0x0A000002 h1.ip;
  check Alcotest.int "client 1 first ip" 0x0A010001 h2.ip;
  check Alcotest.bool "reverse lookup" true
    (Sdnctl.Addressing.host_by_ip a ~ip:0x0A010001 = Some h2);
  check Alcotest.int "hosts of client 0" 2
    (List.length (Sdnctl.Addressing.hosts_of_client a ~client:0));
  check Alcotest.bool "client of ip" true
    (Sdnctl.Addressing.client_of_ip a ~ip:0x0A0100FF = Some 1);
  check Alcotest.bool "foreign ip" true
    (Sdnctl.Addressing.client_of_ip a ~ip:0x0B010001 = None);
  check (Alcotest.pair Alcotest.int Alcotest.int) "subnet" (0x0A010000, 16)
    (Sdnctl.Addressing.subnet a ~client:1)

let test_addressing_validation () =
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"x";
  Alcotest.check_raises "duplicate client"
    (Invalid_argument "Addressing.add_client: duplicate client") (fun () ->
      Sdnctl.Addressing.add_client a ~client:0 ~name:"y");
  Alcotest.check_raises "unknown client"
    (Invalid_argument "Addressing.add_host: unknown client") (fun () ->
      ignore (Sdnctl.Addressing.add_host a ~host:1 ~client:9));
  ignore (Sdnctl.Addressing.add_host a ~host:1 ~client:0);
  Alcotest.check_raises "duplicate host"
    (Invalid_argument "Addressing.add_host: duplicate host") (fun () ->
      ignore (Sdnctl.Addressing.add_host a ~host:1 ~client:0))

(* ---- range-based addressing ---- *)

let test_range_allocation () =
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"dc";
  let r0 = Sdnctl.Addressing.add_range a ~host:0 ~client:0 ~count:1000 in
  (* 1000 rounds up to a naturally aligned 1024 block carved from the
     top of the /16. *)
  check Alcotest.int "first block base" (0x0A000000 lor 0xFC00) r0.r_base;
  check Alcotest.int "first block prefix" 22 r0.r_prefix_len;
  check Alcotest.int "count recorded" 1000 r0.r_count;
  let r1 = Sdnctl.Addressing.add_range a ~host:1 ~client:0 ~count:100 in
  check Alcotest.int "second block below the first" (0x0A000000 lor 0xFB80) r1.r_base;
  check Alcotest.int "second block prefix" 25 r1.r_prefix_len;
  (* Gateways answer for the block base through the ordinary tables. *)
  let g = Option.get (Sdnctl.Addressing.host a ~host:0) in
  check Alcotest.int "gateway ip is the block base" r0.r_base g.ip;
  check Alcotest.bool "gateway found by ip" true
    (Sdnctl.Addressing.host_by_ip a ~ip:r0.r_base = Some g);
  (* Individual hosts keep growing from the bottom of the subnet. *)
  let h = Sdnctl.Addressing.add_host a ~host:2 ~client:0 in
  check Alcotest.int "individual host below the ranges" 0x0A000001 h.ip;
  check Alcotest.int "ranges of client" 2
    (List.length (Sdnctl.Addressing.ranges_of_client a ~client:0));
  check Alcotest.int "all ranges" 2 (List.length (Sdnctl.Addressing.all_ranges a));
  check Alcotest.int "addresses = range sizes + individuals" (1000 + 100 + 1)
    (Sdnctl.Addressing.address_count a)

let test_range_lookup () =
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:3 ~name:"c";
  let r = Sdnctl.Addressing.add_range a ~host:7 ~client:3 ~count:256 in
  check Alcotest.bool "range by gateway host" true
    (Sdnctl.Addressing.range a ~host:7 = Some r);
  check Alcotest.bool "no range on unknown host" true
    (Sdnctl.Addressing.range a ~host:8 = None);
  (* Interior addresses — never individually registered — resolve to
     the range and its gateway. *)
  check Alcotest.bool "interior ip in range" true
    (Sdnctl.Addressing.range_of_ip a ~ip:(r.r_base + 200) = Some r);
  check Alcotest.bool "interior ip resolves to gateway" true
    (Sdnctl.Addressing.resolve_ip a ~ip:(r.r_base + 200)
    = Sdnctl.Addressing.host a ~host:7);
  check Alcotest.bool "below the block is outside" true
    (Sdnctl.Addressing.range_of_ip a ~ip:(r.r_base - 1) = None);
  check Alcotest.bool "other subnet is outside" true
    (Sdnctl.Addressing.range_of_ip a ~ip:0x0A040010 = None);
  check Alcotest.bool "unknown ip unresolved" true
    (Sdnctl.Addressing.resolve_ip a ~ip:0x0A030001 = None)

let test_range_validation () =
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"x";
  ignore (Sdnctl.Addressing.add_range a ~host:0 ~client:0 ~count:16);
  Alcotest.check_raises "duplicate host"
    (Invalid_argument "Addressing.add_range: duplicate host") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:0 ~client:0 ~count:16));
  Alcotest.check_raises "unknown client"
    (Invalid_argument "Addressing.add_range: unknown client") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:1 ~client:9 ~count:16));
  Alcotest.check_raises "zero count"
    (Invalid_argument "Addressing.add_range: count out of range") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:1 ~client:0 ~count:0));
  Alcotest.check_raises "oversized count"
    (Invalid_argument "Addressing.add_range: count out of range") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:1 ~client:0 ~count:0x10001));
  (* A pristine client may hand its whole /16 to one range... *)
  Sdnctl.Addressing.add_client a ~client:1 ~name:"whole";
  let w = Sdnctl.Addressing.add_range a ~host:10 ~client:1 ~count:0x10000 in
  check Alcotest.int "whole-subnet prefix" 16 w.r_prefix_len;
  check Alcotest.int "whole-subnet base" 0x0A010000 w.r_base;
  Alcotest.check_raises "no room after the whole subnet"
    (Invalid_argument "Addressing.add_range: client subnet exhausted") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:11 ~client:1 ~count:1));
  Alcotest.check_raises "no individual hosts either"
    (Invalid_argument "Addressing.add_host: client subnet exhausted") (fun () ->
      ignore (Sdnctl.Addressing.add_host a ~host:11 ~client:1));
  (* ...but not once any individual host exists. *)
  Sdnctl.Addressing.add_client a ~client:2 ~name:"mixed";
  ignore (Sdnctl.Addressing.add_host a ~host:20 ~client:2);
  Alcotest.check_raises "whole subnet collides with individuals"
    (Invalid_argument "Addressing.add_range: client subnet exhausted") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:21 ~client:2 ~count:0x10000))

let test_range_meets_individuals () =
  (* Ranges grow downward, individual hosts upward; the allocator
     refuses the block that would cross the individuals. *)
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"x";
  let top = Sdnctl.Addressing.add_range a ~host:0 ~client:0 ~count:0x8000 in
  check Alcotest.int "top half" 0x0A008000 top.r_base;
  let quarter = Sdnctl.Addressing.add_range a ~host:1 ~client:0 ~count:0x4000 in
  check Alcotest.int "next quarter" 0x0A004000 quarter.r_base;
  ignore (Sdnctl.Addressing.add_host a ~host:2 ~client:0);
  Alcotest.check_raises "last quarter would cross the individuals"
    (Invalid_argument "Addressing.add_range: client subnet exhausted") (fun () ->
      ignore (Sdnctl.Addressing.add_range a ~host:3 ~client:0 ~count:0x4000));
  (* A smaller block still fits above the individual space. *)
  let small = Sdnctl.Addressing.add_range a ~host:3 ~client:0 ~count:0x1000 in
  check Alcotest.int "smaller block placed" 0x0A003000 small.r_base

(* ---- Provider + attacks over a real network ---- *)

(* Linear topology, 3 switches, one host per switch, 2 clients:
   hosts 0,2 -> client 0; host 1 -> client 1. *)
let deployment ?(isolation = true) ?(whitelist = []) () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let net = Netsim.Net.create ~seed:3 topo in
  let addressing = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client addressing ~client:0 ~name:"victim";
  Sdnctl.Addressing.add_client addressing ~client:1 ~name:"attacker";
  ignore (Sdnctl.Addressing.add_host addressing ~host:0 ~client:0);
  ignore (Sdnctl.Addressing.add_host addressing ~host:1 ~client:1);
  ignore (Sdnctl.Addressing.add_host addressing ~host:2 ~client:0);
  let provider =
    Sdnctl.Provider.create net addressing
      ~policy:{ Sdnctl.Provider.isolation; whitelist }
      ~conn_delay:1e-3
  in
  Sdnctl.Provider.install_all provider;
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  (net, addressing, provider)

let send_probe net addressing ~from_host ~to_host =
  let src = Option.get (Sdnctl.Addressing.host addressing ~host:from_host) in
  let dst = Option.get (Sdnctl.Addressing.host addressing ~host:to_host) in
  let header =
    Hspace.Header.udp ~src_ip:src.ip ~dst_ip:dst.ip ~src_port:1000 ~dst_port:80
  in
  Netsim.Net.host_send net ~host:from_host (Netsim.Packet.make ~header "probe")

let count_delivered net ~host f =
  let count = ref 0 in
  Netsim.Net.set_host_receiver net ~host (fun p -> if f p then incr count);
  count

let run net = ignore (Netsim.Sim.run (Netsim.Net.sim net))

let test_provider_routes_same_client () =
  let net, addressing, _ = deployment () in
  let got = count_delivered net ~host:2 (fun _ -> true) in
  send_probe net addressing ~from_host:0 ~to_host:2;
  run net;
  check Alcotest.int "intra-client traffic delivered" 1 !got

let test_provider_isolates_clients () =
  let net, addressing, _ = deployment () in
  let got = count_delivered net ~host:1 (fun _ -> true) in
  send_probe net addressing ~from_host:0 ~to_host:1;
  run net;
  check Alcotest.int "cross-client traffic dropped" 0 !got;
  check Alcotest.bool "dropped by ACL (matched a drop rule)" true
    ((Netsim.Net.stats net).delivered = 0)

let test_provider_no_isolation () =
  let net, addressing, _ = deployment ~isolation:false () in
  let got = count_delivered net ~host:1 (fun _ -> true) in
  send_probe net addressing ~from_host:0 ~to_host:1;
  run net;
  check Alcotest.int "without ACLs traffic crosses" 1 !got

let test_provider_whitelist () =
  (* Client 0 may reach client 1. *)
  let net, addressing, _ = deployment ~whitelist:[ (0, 1) ] () in
  let got01 = count_delivered net ~host:1 (fun _ -> true) in
  send_probe net addressing ~from_host:0 ~to_host:1;
  run net;
  check Alcotest.int "whitelisted direction passes" 1 !got01;
  (* The reverse direction is still blocked. *)
  let got10 = count_delivered net ~host:0 (fun _ -> true) in
  send_probe net addressing ~from_host:1 ~to_host:0;
  run net;
  check Alcotest.int "reverse still blocked" 0 !got10

let test_provider_rule_count () =
  let _, _, provider = deployment () in
  (* 3 hosts x 3 switches routing + ACLs at 3 access points x 1 foreign
     client = 9 + 3 = 12. *)
  check Alcotest.int "expected rule count" 12 (Sdnctl.Provider.rule_count provider)

let send_to net addressing ~from_host ~dst_ip =
  let src = Option.get (Sdnctl.Addressing.host addressing ~host:from_host) in
  let header =
    Hspace.Header.udp ~src_ip:src.ip ~dst_ip ~src_port:1000 ~dst_port:80
  in
  Netsim.Net.host_send net ~host:from_host (Netsim.Packet.make ~header "probe")

let test_provider_routes_range_prefix () =
  (* Range blocks are routed by a single prefix rule: traffic to an
     interior address that was never individually registered must reach
     the range's gateway, and cross-client range traffic must still be
     dropped by the ACL. *)
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let net = Netsim.Net.create ~seed:11 topo in
  let a = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client a ~client:0 ~name:"dc";
  Sdnctl.Addressing.add_client a ~client:1 ~name:"other";
  let r0 = Sdnctl.Addressing.add_range a ~host:0 ~client:0 ~count:256 in
  let r1 = Sdnctl.Addressing.add_range a ~host:1 ~client:1 ~count:256 in
  ignore (Sdnctl.Addressing.add_host a ~host:2 ~client:0);
  let provider =
    Sdnctl.Provider.create net a
      ~policy:{ Sdnctl.Provider.isolation = true; whitelist = [] }
      ~conn_delay:1e-3
  in
  Sdnctl.Provider.install_all provider;
  run net;
  let got_range = count_delivered net ~host:0 (fun _ -> true) in
  send_to net a ~from_host:2 ~dst_ip:(r0.r_base + 77);
  run net;
  check Alcotest.int "interior range address delivered to gateway" 1 !got_range;
  let got_foreign = count_delivered net ~host:1 (fun _ -> true) in
  send_to net a ~from_host:2 ~dst_ip:(r1.r_base + 9);
  run net;
  check Alcotest.int "foreign range traffic dropped" 0 !got_foreign

(* ---- attacks ---- *)

let test_attack_join_pierces_isolation () =
  let net, addressing, provider = deployment () in
  let got = count_delivered net ~host:0 (fun _ -> true) in
  (* Before: attacker (host 1) cannot reach victim host 0. *)
  send_probe net addressing ~from_host:1 ~to_host:0;
  run net;
  check Alcotest.int "blocked before attack" 0 !got;
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  run net;
  send_probe net addressing ~from_host:1 ~to_host:0;
  run net;
  check Alcotest.int "reaches after join attack" 1 !got

let test_attack_exfiltrate_duplicates () =
  let net, addressing, provider = deployment ~isolation:false () in
  let victim_got = count_delivered net ~host:2 (fun _ -> true) in
  let attacker_got = count_delivered net ~host:1 (fun _ -> true) in
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 1 });
  run net;
  send_probe net addressing ~from_host:0 ~to_host:2;
  run net;
  check Alcotest.int "victim still receives" 1 !victim_got;
  check Alcotest.int "attacker receives the copy" 1 !attacker_got

let test_attack_blackhole () =
  let net, addressing, provider = deployment () in
  let got = count_delivered net ~host:2 (fun _ -> true) in
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Blackhole { victim_host = 2 });
  run net;
  send_probe net addressing ~from_host:0 ~to_host:2;
  run net;
  check Alcotest.int "blackholed" 0 !got

let test_attack_divert_takes_detour () =
  (* Grid 2x2 so a detour exists: 0-1 / 2-3, hosts h0@s0 h3@s3. *)
  let topo = Workload.Topogen.grid Workload.Topogen.default_params ~rows:2 ~cols:2 in
  let net = Netsim.Net.create ~seed:5 topo in
  let addressing = Sdnctl.Addressing.create () in
  Sdnctl.Addressing.add_client addressing ~client:0 ~name:"c";
  List.iter
    (fun h -> ignore (Sdnctl.Addressing.add_host addressing ~host:h ~client:0))
    [ 0; 1; 2; 3 ];
  let provider =
    Sdnctl.Provider.create net addressing
      ~policy:{ Sdnctl.Provider.isolation = false; whitelist = [] }
      ~conn_delay:1e-3
  in
  Sdnctl.Provider.install_all provider;
  run net;
  (* Divert h0->h3 through switch 1 (shortest could be via 1 or 2; force 1
     then verify the witness path visits it). *)
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Divert { src_host = 0; dst_host = 3; via_sw = 1 });
  run net;
  let got = count_delivered net ~host:3 (fun _ -> true) in
  send_probe net addressing ~from_host:0 ~to_host:3;
  run net;
  check Alcotest.int "still delivered via detour" 1 !got

let test_attack_meter_squeeze_throttles () =
  let net, addressing, provider = deployment () in
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 1 });
  run net;
  let got = count_delivered net ~host:2 (fun _ -> true) in
  for _ = 1 to 20 do
    send_probe net addressing ~from_host:0 ~to_host:2
  done;
  run net;
  check Alcotest.bool "traffic throttled" true (!got < 20);
  check Alcotest.bool "meter drops counted" true ((Netsim.Net.stats net).dropped_meter > 0)

let test_attack_transient_installs_and_retracts () =
  let net, addressing, provider = deployment () in
  Sdnctl.Attack.launch net addressing ~conn:(Sdnctl.Provider.conn provider)
    (Sdnctl.Attack.Transient
       {
         attack = Sdnctl.Attack.Blackhole { victim_host = 2 };
         start = 0.1;
         duration = 0.1;
       });
  (* During the window the rule is present. *)
  ignore (Netsim.Sim.run ~until:0.15 (Netsim.Net.sim net));
  let attack_rules () =
    List.length
      (List.filter
         (fun (s : Ofproto.Flow_entry.spec) -> s.cookie = Sdnctl.Attack.cookie)
         (Ofproto.Flow_table.specs (Netsim.Net.table net ~sw:2)))
  in
  check Alcotest.int "installed during window" 1 (attack_rules ());
  ignore (Netsim.Sim.run ~until:0.5 (Netsim.Net.sim net));
  check Alcotest.int "retracted after window" 0 (attack_rules ())

let test_attack_divert_rejects_impossible_detour () =
  (* In a linear chain there is no loop-free path through a switch
     beyond the destination: the attack must refuse rather than install
     looping rules. *)
  let net, addressing, provider = deployment () in
  Alcotest.check_raises "no loop-free detour"
    (Invalid_argument "Attack.Divert: detour is not loop-free") (fun () ->
      Sdnctl.Attack.launch net addressing
        ~conn:(Sdnctl.Provider.conn provider)
        (Sdnctl.Attack.Divert { src_host = 0; dst_host = 1; via_sw = 2 }))

let test_attack_unknown_host_rejected () =
  let net, addressing, provider = deployment () in
  Alcotest.check_raises "unknown host" (Invalid_argument "Attack: unknown host")
    (fun () ->
      Sdnctl.Attack.launch net addressing
        ~conn:(Sdnctl.Provider.conn provider)
        (Sdnctl.Attack.Blackhole { victim_host = 99 }))

let test_attack_describe () =
  let d = Sdnctl.Attack.describe (Sdnctl.Attack.Blackhole { victim_host = 3 }) in
  check Alcotest.string "describe" "blackhole(h3)" d

let () =
  Alcotest.run "sdnctl"
    [
      ( "addressing",
        [
          Alcotest.test_case "assignment" `Quick test_addressing_assignment;
          Alcotest.test_case "validation" `Quick test_addressing_validation;
        ] );
      ( "ranges",
        [
          Alcotest.test_case "allocation" `Quick test_range_allocation;
          Alcotest.test_case "lookup" `Quick test_range_lookup;
          Alcotest.test_case "validation" `Quick test_range_validation;
          Alcotest.test_case "meets individuals" `Quick test_range_meets_individuals;
        ] );
      ( "provider",
        [
          Alcotest.test_case "routes same client" `Quick test_provider_routes_same_client;
          Alcotest.test_case "isolates clients" `Quick test_provider_isolates_clients;
          Alcotest.test_case "no isolation" `Quick test_provider_no_isolation;
          Alcotest.test_case "whitelist" `Quick test_provider_whitelist;
          Alcotest.test_case "rule count" `Quick test_provider_rule_count;
          Alcotest.test_case "range prefix routing" `Quick
            test_provider_routes_range_prefix;
        ] );
      ( "attack",
        [
          Alcotest.test_case "join pierces isolation" `Quick test_attack_join_pierces_isolation;
          Alcotest.test_case "exfiltrate duplicates" `Quick test_attack_exfiltrate_duplicates;
          Alcotest.test_case "blackhole" `Quick test_attack_blackhole;
          Alcotest.test_case "divert" `Quick test_attack_divert_takes_detour;
          Alcotest.test_case "meter squeeze" `Quick test_attack_meter_squeeze_throttles;
          Alcotest.test_case "transient install/retract" `Quick
            test_attack_transient_installs_and_retracts;
          Alcotest.test_case "describe" `Quick test_attack_describe;
          Alcotest.test_case "impossible detour rejected" `Quick
            test_attack_divert_rejects_impossible_detour;
          Alcotest.test_case "unknown host rejected" `Quick
            test_attack_unknown_host_rejected;
        ] );
    ]
