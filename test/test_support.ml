(* Unit + property tests for the support substrate. *)

let check = Alcotest.check

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Support.Rng.create 7 and b = Support.Rng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Support.Rng.int a 1000) (Support.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Support.Rng.create 7 in
  let b = Support.Rng.split a in
  (* Drawing from the split stream must not equal just continuing [a]'s
     stream from the same point (they are distinct states). *)
  let xs = List.init 20 (fun _ -> Support.Rng.int a 1_000_000)
  and ys = List.init 20 (fun _ -> Support.Rng.int b 1_000_000) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_bounds () =
  let rng = Support.Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Support.Rng.int rng 17 in
    check Alcotest.bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Support.Rng.int_range rng (-5) 5 in
    check Alcotest.bool "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let rng = Support.Rng.create 2 in
  for _ = 1 to 1000 do
    let v = Support.Rng.float rng 3.0 in
    check Alcotest.bool "float in range" true (v >= 0.0 && v < 3.0)
  done

let test_rng_bernoulli_extremes () =
  let rng = Support.Rng.create 3 in
  for _ = 1 to 100 do
    check Alcotest.bool "p=0 never" false (Support.Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check Alcotest.bool "p=1 always" true (Support.Rng.bernoulli rng 1.0)
  done

let test_rng_exponential_mean () =
  let rng = Support.Rng.create 4 in
  let n = 20_000 in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Support.Rng.exponential rng ~mean:2.0
  done;
  let mean = !total /. float_of_int n in
  check Alcotest.bool "sample mean near 2.0" true (abs_float (mean -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Support.Rng.create 5 in
  let xs = List.init 50 Fun.id in
  let ys = Support.Rng.shuffle rng xs in
  check (Alcotest.list Alcotest.int) "same multiset" xs (List.sort compare ys)

let test_rng_sample () =
  let rng = Support.Rng.create 6 in
  let xs = List.init 30 Fun.id in
  let s = Support.Rng.sample rng 10 xs in
  check Alcotest.int "sample size" 10 (List.length s);
  check Alcotest.int "distinct" 10 (List.length (List.sort_uniq compare s));
  check (Alcotest.list Alcotest.int) "sample of small list is the list" [ 1; 2 ]
    (Support.Rng.sample rng 5 [ 1; 2 ])

let test_rng_invalid () =
  let rng = Support.Rng.create 0 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Support.Rng.int rng 0));
  Alcotest.check_raises "pick []" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Support.Rng.pick rng []))

(* ---- Pqueue ---- *)

let test_pqueue_order () =
  let q = Support.Pqueue.create () in
  Support.Pqueue.push q 3.0 "c";
  Support.Pqueue.push q 1.0 "a";
  Support.Pqueue.push q 2.0 "b";
  let pop () = match Support.Pqueue.pop q with Some (_, v) -> v | None -> "!" in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  check Alcotest.bool "empty" true (Support.Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Support.Pqueue.create () in
  List.iter (fun v -> Support.Pqueue.push q 1.0 v) [ 1; 2; 3; 4; 5 ];
  let popped = List.init 5 (fun _ -> snd (Option.get (Support.Pqueue.pop q))) in
  check (Alcotest.list Alcotest.int) "FIFO within equal priority" [ 1; 2; 3; 4; 5 ] popped

let test_pqueue_random_sorted () =
  let rng = Support.Rng.create 9 in
  let q = Support.Pqueue.create () in
  let priorities = List.init 500 (fun _ -> Support.Rng.float rng 100.0) in
  List.iter (fun p -> Support.Pqueue.push q p p) priorities;
  let rec drain acc =
    match Support.Pqueue.pop q with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
  in
  let drained = drain [] in
  check (Alcotest.list (Alcotest.float 0.0)) "drains in sorted order"
    (List.sort compare priorities) drained

let test_pqueue_peek () =
  let q = Support.Pqueue.create () in
  check Alcotest.bool "peek empty" true (Support.Pqueue.peek q = None);
  Support.Pqueue.push q 5.0 "x";
  check Alcotest.bool "peek keeps element" true
    (Support.Pqueue.peek q <> None && Support.Pqueue.length q = 1)

(* ---- Ring ---- *)

let test_ring_eviction () =
  let r = Support.Ring.create 3 in
  List.iter (Support.Ring.push r) [ 1; 2; 3; 4; 5 ];
  check (Alcotest.list Alcotest.int) "keeps most recent" [ 3; 4; 5 ] (Support.Ring.to_list r);
  check Alcotest.int "length" 3 (Support.Ring.length r);
  check Alcotest.int "capacity" 3 (Support.Ring.capacity r)

let test_ring_partial () =
  let r = Support.Ring.create 10 in
  List.iter (Support.Ring.push r) [ 1; 2 ];
  check (Alcotest.list Alcotest.int) "partial fill" [ 1; 2 ] (Support.Ring.to_list r);
  check Alcotest.bool "latest" true (Support.Ring.latest r = Some 2)

let test_ring_find () =
  let r = Support.Ring.create 5 in
  List.iter (Support.Ring.push r) [ 1; 2; 3; 4 ];
  check Alcotest.bool "find most recent even" true
    (Support.Ring.find r ~f:(fun x -> x mod 2 = 0) = Some 4);
  check Alcotest.bool "find missing" true (Support.Ring.find r ~f:(fun x -> x > 9) = None)

let test_ring_fold_clear () =
  let r = Support.Ring.create 4 in
  List.iter (Support.Ring.push r) [ 1; 2; 3 ];
  check Alcotest.int "fold sum" 6 (Support.Ring.fold r ~init:0 ~f:( + ));
  Support.Ring.clear r;
  check Alcotest.int "cleared" 0 (Support.Ring.length r)

(* ---- Stats ---- *)

let test_stats_mean_stddev () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Support.Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Support.Stats.mean []);
  check (Alcotest.float 1e-9) "stddev constant" 0.0 (Support.Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "stddev" (sqrt (2.0 /. 3.0))
    (Support.Stats.stddev [ 1.0; 2.0; 3.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Support.Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p99" 99.0 (Support.Stats.percentile 99.0 xs);
  check (Alcotest.float 1e-9) "p100" 100.0 (Support.Stats.percentile 100.0 xs)

let test_stats_minmax_histogram () =
  check (Alcotest.float 1e-9) "min" 1.0 (Support.Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "max" 3.0 (Support.Stats.maximum [ 3.0; 1.0; 2.0 ]);
  let h = Support.Stats.histogram ~buckets:2 ~lo:0.0 ~hi:10.0 [ 1.0; 2.0; 9.0 ] in
  check (Alcotest.array Alcotest.int) "histogram" [| 2; 1 |] h

(* ---- Pool ---- *)

let test_pool_ordering () =
  let pool = Support.Pool.create 4 in
  let xs = Array.init 100 Fun.id in
  let expected = Array.map (fun x -> x * x) xs in
  check (Alcotest.array Alcotest.int) "parmap preserves order" expected
    (Support.Pool.parmap pool (fun x -> x * x) xs);
  check (Alcotest.list Alcotest.int) "map_list" [ 2; 4; 6 ]
    (Support.Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Support.Pool.shutdown pool

let test_pool_sequential_fallback () =
  let pool = Support.Pool.create 1 in
  check Alcotest.int "size" 1 (Support.Pool.size pool);
  let here = Domain.self () in
  let ran_in =
    Support.Pool.parmap pool (fun _ -> Domain.self ()) (Array.init 8 Fun.id)
  in
  Array.iter
    (fun d -> check Alcotest.bool "pool_size=1 runs in the caller" true (d = here))
    ran_in;
  Support.Pool.shutdown pool

let test_pool_exception_propagation () =
  let pool = Support.Pool.create 4 in
  Alcotest.check_raises "first failing index wins" (Failure "boom-3") (fun () ->
      ignore
        (Support.Pool.parmap pool
           (fun i -> if i >= 3 then failwith (Printf.sprintf "boom-%d" i) else i)
           (Array.init 16 Fun.id)));
  (* The pool survives a failed batch. *)
  check (Alcotest.array Alcotest.int) "usable after failure" [| 0; 2; 4 |]
    (Support.Pool.parmap pool (fun i -> 2 * i) [| 0; 1; 2 |]);
  Support.Pool.shutdown pool

let test_pool_nested_calls () =
  let pool = Support.Pool.create 3 in
  (* A task that itself calls parmap must degrade to sequential rather
     than deadlock on the shared job queue. *)
  let got =
    Support.Pool.parmap pool
      (fun i ->
        Array.fold_left ( + ) 0
          (Support.Pool.parmap pool (fun j -> i + j) (Array.init 5 Fun.id)))
      (Array.init 6 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "nested values" (Array.init 6 (fun i -> (5 * i) + 10)) got;
  Support.Pool.shutdown pool

let test_pool_init_per_worker () =
  let pool = Support.Pool.create 4 in
  let inits = Atomic.make 0 in
  let got =
    Support.Pool.parmap_init pool
      ~init:(fun () -> Atomic.incr inits)
      ~f:(fun () x -> x + 1)
      (Array.init 64 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "values" (Array.init 64 (fun i -> i + 1)) got;
  let n = Atomic.get inits in
  check Alcotest.bool "init runs once per participating domain" true (n >= 1 && n <= 4);
  Support.Pool.shutdown pool

let test_pool_edge_cases () =
  Alcotest.check_raises "size 0 rejected"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Support.Pool.create 0));
  let pool = Support.Pool.create 4 in
  check (Alcotest.list Alcotest.int) "empty input" []
    (Support.Pool.map_list pool Fun.id []);
  Support.Pool.shutdown pool;
  Support.Pool.shutdown pool;
  (* idempotent; a stopped pool degrades to sequential *)
  check (Alcotest.list Alcotest.int) "post-shutdown sequential" [ 2; 4 ]
    (Support.Pool.map_list pool (fun x -> 2 * x) [ 1; 2 ]);
  check Alcotest.bool "default_size positive" true (Support.Pool.default_size () >= 1)

let test_pool_init_poison () =
  let pool = Support.Pool.create 4 in
  (* A failing init must reach the caller like a task failure — and
     must not leave the workers wedged or the pool unusable. *)
  Alcotest.check_raises "worker init failure reaches the caller" (Failure "bad init")
    (fun () ->
      ignore
        (Support.Pool.parmap_init pool
           ~init:(fun () -> failwith "bad init")
           ~f:(fun () x -> x)
           (Array.init 32 Fun.id)));
  check (Alcotest.array Alcotest.int) "pool usable after poisoned init"
    (Array.init 8 (fun i -> i + 1))
    (Support.Pool.parmap_init pool ~init:(fun () -> 1) ~f:( + ) (Array.init 8 Fun.id));
  Support.Pool.shutdown pool

let test_pool_supervised_ordering () =
  let pool = Support.Pool.create 4 in
  let xs = Array.init 50 Fun.id in
  check (Alcotest.array Alcotest.int) "supervised preserves order"
    (Array.map (fun x -> x * 3) xs)
    (Support.Pool.parmap_supervised pool ~init:(fun () -> ()) ~f:(fun () x -> x * 3) xs);
  check (Alcotest.array Alcotest.int) "empty input" [||]
    (Support.Pool.parmap_supervised pool ~init:(fun () -> ()) ~f:(fun () x -> x) [||]);
  Support.Pool.shutdown pool

let test_pool_supervised_raise_retry () =
  let pool = Support.Pool.create 4 in
  (* A task that raises on its first attempt only: the supervisor
     retries it sequentially in the caller and the sweep completes. *)
  let first = Atomic.make true in
  let faults = ref [] in
  let got =
    Support.Pool.parmap_supervised pool
      ~on_fault:(fun f -> faults := f :: !faults)
      ~init:(fun () -> ())
      ~f:(fun () x ->
        if x = 7 && Atomic.exchange first false then failwith "flaky";
        x + 1)
      (Array.init 16 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "all results despite the raise"
    (Array.init 16 (fun i -> i + 1))
    got;
  check Alcotest.bool "fault reported with the failing index" true
    (List.exists
       (fun (f : Support.Pool.fault) ->
         f.fault_index = 7
         && match f.reason with Support.Pool.Task_raised _ -> true | _ -> false)
       !faults);
  Support.Pool.shutdown pool

let test_pool_supervised_raise_propagates () =
  let pool = Support.Pool.create 4 in
  (* Deterministic failure: the caller's sequential retry fails too, so
     the exception propagates — smallest failing index first, matching
     [parmap_init]. *)
  Alcotest.check_raises "deterministic failure reaches caller" (Failure "always-3")
    (fun () ->
      ignore
        (Support.Pool.parmap_supervised pool
           ~init:(fun () -> ())
           ~f:(fun () x ->
             if x >= 3 then failwith (Printf.sprintf "always-%d" x) else x)
           (Array.init 8 Fun.id)));
  check (Alcotest.array Alcotest.int) "usable after failed sweep" [| 0; 2; 4 |]
    (Support.Pool.parmap pool (fun i -> 2 * i) [| 0; 1; 2 |]);
  Support.Pool.shutdown pool

let test_pool_supervised_deadline () =
  let pool = Support.Pool.create 3 in
  (* One task wedges its worker domain well past the deadline (first
     attempt only).  The supervisor must supersede it, respawn the
     domain and complete the sweep via the caller — not wait out the
     sleep. *)
  let stuck = Atomic.make true in
  let reasons = ref [] in
  let got =
    Support.Pool.parmap_supervised pool ~deadline:0.05
      ~on_fault:(fun f -> reasons := f.Support.Pool.reason :: !reasons)
      ~init:(fun () -> ())
      ~f:(fun () x ->
        if x = 2 && Atomic.exchange stuck false then Unix.sleepf 0.4;
        x * 2)
      (Array.init 12 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "order-preserving results despite the hang"
    (Array.init 12 (fun i -> i * 2))
    got;
  check Alcotest.bool "deadline fault reported" true
    (List.exists
       (function Support.Pool.Deadline_exceeded _ -> true | _ -> false)
       !reasons);
  check Alcotest.bool "wedged domain respawned" true (Support.Pool.respawns pool >= 1);
  check (Alcotest.array Alcotest.int) "pool fully usable after respawn" [| 0; 1; 4; 9 |]
    (Support.Pool.parmap pool (fun i -> i * i) (Array.init 4 Fun.id));
  Support.Pool.shutdown pool

let test_pool_supervised_deadline_deterministic () =
  let pool = Support.Pool.create 3 in
  (* Same scenario as above but on an injected clock, so the outcome
     cannot race a slow runner: task 2 wedges until the supervisor
     reports its fault (no wall-clock sleep anywhere), and "time"
     passes only when task 7 — queued after 2, so necessarily dequeued
     after 2 was stamped in flight — bumps the fake clock past the
     deadline. *)
  let clock = Atomic.make 0.0 in
  let released = Atomic.make false in
  let stuck = Atomic.make true in
  let reasons = ref [] in
  let got =
    Support.Pool.parmap_supervised pool ~deadline:5.0
      ~clock:(fun () -> Atomic.get clock)
      ~on_fault:(fun f ->
        reasons := f.Support.Pool.reason :: !reasons;
        Atomic.set released true)
      ~init:(fun () -> ())
      ~f:(fun () x ->
        if x = 2 && Atomic.exchange stuck false then
          while not (Atomic.get released) do
            Domain.cpu_relax ()
          done;
        if x = 7 then Atomic.set clock 100.0;
        x * 2)
      (Array.init 12 Fun.id)
  in
  check (Alcotest.array Alcotest.int) "order-preserving results despite the wedge"
    (Array.init 12 (fun i -> i * 2))
    got;
  check Alcotest.bool "deadline fault on the wedged task" true
    (List.exists
       (function Support.Pool.Deadline_exceeded d -> d = 5.0 | _ -> false)
       !reasons);
  check Alcotest.bool "wedged domain respawned" true (Support.Pool.respawns pool >= 1);
  Support.Pool.shutdown pool

(* ---- qcheck properties ---- *)

let prop_pqueue_sorted =
  QCheck2.Test.make ~name:"pqueue drains sorted" ~count:200
    QCheck2.Gen.(list (float_bound_inclusive 1000.0))
    (fun priorities ->
      let q = Support.Pqueue.create () in
      List.iter (fun p -> Support.Pqueue.push q p ()) priorities;
      let rec drain acc =
        match Support.Pqueue.pop q with
        | None -> List.rev acc
        | Some (p, ()) -> drain (p :: acc)
      in
      drain [] = List.sort compare priorities)

let prop_ring_suffix =
  QCheck2.Test.make ~name:"ring keeps the last k items" ~count:200
    QCheck2.Gen.(pair (int_range 1 20) (list int))
    (fun (cap, xs) ->
      let r = Support.Ring.create cap in
      List.iter (Support.Ring.push r) xs;
      let expected =
        let n = List.length xs in
        List.filteri (fun i _ -> i >= n - cap) xs
      in
      Support.Ring.to_list r = expected)

let () =
  Alcotest.run "support"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample" `Quick test_rng_sample;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basic order" `Quick test_pqueue_order;
          Alcotest.test_case "FIFO ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "random drains sorted" `Quick test_pqueue_random_sorted;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          QCheck_alcotest.to_alcotest prop_pqueue_sorted;
        ] );
      ( "ring",
        [
          Alcotest.test_case "eviction" `Quick test_ring_eviction;
          Alcotest.test_case "partial fill" `Quick test_ring_partial;
          Alcotest.test_case "find" `Quick test_ring_find;
          Alcotest.test_case "fold and clear" `Quick test_ring_fold_clear;
          QCheck_alcotest.to_alcotest prop_ring_suffix;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "minmax/histogram" `Quick test_stats_minmax_histogram;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parmap ordering" `Quick test_pool_ordering;
          Alcotest.test_case "sequential fallback" `Quick test_pool_sequential_fallback;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagation;
          Alcotest.test_case "nested calls" `Quick test_pool_nested_calls;
          Alcotest.test_case "per-worker init" `Quick test_pool_init_per_worker;
          Alcotest.test_case "edge cases" `Quick test_pool_edge_cases;
          Alcotest.test_case "init poisoning" `Quick test_pool_init_poison;
          Alcotest.test_case "supervised ordering" `Quick test_pool_supervised_ordering;
          Alcotest.test_case "supervised flaky retry" `Quick
            test_pool_supervised_raise_retry;
          Alcotest.test_case "supervised deterministic raise" `Quick
            test_pool_supervised_raise_propagates;
          Alcotest.test_case "supervised deadline respawn" `Quick
            test_pool_supervised_deadline;
          Alcotest.test_case "supervised deadline (deterministic clock)" `Quick
            test_pool_supervised_deadline_deterministic;
        ] );
    ]
