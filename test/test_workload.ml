(* Tests for the topology generators and the scenario builder. *)

let check = Alcotest.check

let p = Workload.Topogen.default_params

(* Every generated topology must be fully wired (no dangling host),
   have unique ports, and be connected over the switch graph. *)
let structural_invariants name topo =
  let switches = Netsim.Topology.switches topo in
  let hosts = Netsim.Topology.hosts topo in
  (* hosts attach to exactly one switch *)
  List.iter
    (fun h ->
      match Netsim.Topology.host_attachment topo h with
      | Some { Netsim.Topology.node = Netsim.Topology.Switch _; _ } -> ()
      | Some _ | None -> Alcotest.fail (Printf.sprintf "%s: host %d unattached" name h))
    hosts;
  (* switch graph connected: BFS from first switch reaches all *)
  (match switches with
  | [] -> Alcotest.fail (name ^ ": no switches")
  | first :: _ ->
    let dist, _ = Netsim.Topology.shortest_paths topo ~from_sw:first in
    List.iter
      (fun sw ->
        if not (Hashtbl.mem dist sw) then
          Alcotest.fail (Printf.sprintf "%s: switch %d disconnected" name sw))
      switches);
  (* links reference declared nodes and distinct endpoints *)
  List.iter
    (fun (l : Netsim.Topology.link) ->
      if l.a = l.b then Alcotest.fail (name ^ ": self-loop"))
    (Netsim.Topology.links topo)

let test_generators_structure () =
  structural_invariants "linear" (Workload.Topogen.linear p 5);
  structural_invariants "ring" (Workload.Topogen.ring p 5);
  structural_invariants "star" (Workload.Topogen.star p 4);
  structural_invariants "grid" (Workload.Topogen.grid p ~rows:3 ~cols:4);
  structural_invariants "fat_tree" (Workload.Topogen.fat_tree p ~k:4);
  structural_invariants "waxman"
    (Workload.Topogen.waxman p (Support.Rng.create 3) ~n:15 ~alpha:0.4 ~beta:0.4);
  structural_invariants "isp" (Workload.Topogen.isp p ~core:4 ~pops_per_core:2)

let test_generator_counts () =
  check Alcotest.int "linear switches" 5
    (Workload.Topogen.switch_count (Workload.Topogen.linear p 5));
  check Alcotest.int "linear hosts" 5
    (Workload.Topogen.host_count (Workload.Topogen.linear p 5));
  let ft = Workload.Topogen.fat_tree p ~k:4 in
  (* (k/2)^2 cores + k pods x k switches = 4 + 16. *)
  check Alcotest.int "fat-tree switches" 20 (Workload.Topogen.switch_count ft);
  (* hosts only on the k*k/2 edge switches *)
  check Alcotest.int "fat-tree hosts" 8 (Workload.Topogen.host_count ft);
  let grid = Workload.Topogen.grid p ~rows:2 ~cols:3 in
  check Alcotest.int "grid switches" 6 (Workload.Topogen.switch_count grid);
  let isp = Workload.Topogen.isp p ~core:4 ~pops_per_core:2 in
  (* 4 core + 8 PoPs; hosts only on PoPs. *)
  check Alcotest.int "isp switches" 12 (Workload.Topogen.switch_count isp);
  check Alcotest.int "isp hosts" 8 (Workload.Topogen.host_count isp);
  List.iter
    (fun core_sw ->
      check Alcotest.int "no hosts on core" 0
        (List.length (Netsim.Topology.hosts_on_switch isp core_sw)))
    [ 0; 1; 2; 3 ]

let test_generator_hosts_per_switch () =
  let p2 = { p with Workload.Topogen.hosts_per_switch = 3 } in
  let topo = Workload.Topogen.linear p2 4 in
  check Alcotest.int "3 hosts per switch" 12 (Workload.Topogen.host_count topo);
  List.iter
    (fun sw ->
      check Alcotest.int
        (Printf.sprintf "switch %d hosts" sw)
        3
        (List.length (Netsim.Topology.hosts_on_switch topo sw)))
    (Netsim.Topology.switches topo)

let test_generator_validation () =
  Alcotest.check_raises "ring too small"
    (Invalid_argument "Topogen.ring: need at least three switches") (fun () ->
      ignore (Workload.Topogen.ring p 2));
  Alcotest.check_raises "odd fat-tree"
    (Invalid_argument "Topogen.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Workload.Topogen.fat_tree p ~k:3))

let test_fat_tree_diameter () =
  (* Any two edge switches are at most 4 hops apart in a fat tree. *)
  let topo = Workload.Topogen.fat_tree p ~k:4 in
  List.iter
    (fun sw ->
      let dist, _ = Netsim.Topology.shortest_paths topo ~from_sw:sw in
      Hashtbl.iter
        (fun _ d -> check Alcotest.bool "diameter <= 4" true (d <= 4))
        dist)
    (Netsim.Topology.switches topo)

(* ---- property suite: structural invariants over every family ---- *)

let fingerprint topo =
  ( Netsim.Topology.switches topo,
    Netsim.Topology.hosts topo,
    List.map
      (fun (l : Netsim.Topology.link) -> (l.a, l.b, l.delay))
      (Netsim.Topology.links topo) )

let family_name = function
  | Workload.Topogen.Linear n -> Printf.sprintf "linear %d" n
  | Workload.Topogen.Ring n -> Printf.sprintf "ring %d" n
  | Workload.Topogen.Star n -> Printf.sprintf "star %d" n
  | Workload.Topogen.Grid { rows; cols } -> Printf.sprintf "grid %dx%d" rows cols
  | Workload.Topogen.Fat_tree { k } -> Printf.sprintf "fat_tree %d" k
  | Workload.Topogen.Leaf_spine { spines; leaves } ->
    Printf.sprintf "leaf_spine %d/%d" spines leaves
  | Workload.Topogen.Waxman { n; alpha; beta } ->
    Printf.sprintf "waxman %d a=%.2f b=%.2f" n alpha beta
  | Workload.Topogen.Isp { core; pops_per_core } ->
    Printf.sprintf "isp %d/%d" core pops_per_core
  | Workload.Topogen.Scale_free { n; m } -> Printf.sprintf "scale_free %d m=%d" n m

(* How many switches are host-eligible (before striding). *)
let eligible_sites = function
  | Workload.Topogen.Linear n | Workload.Topogen.Ring n | Workload.Topogen.Star n -> n
  | Workload.Topogen.Grid { rows; cols } -> rows * cols
  | Workload.Topogen.Fat_tree { k } -> k * k / 2
  | Workload.Topogen.Leaf_spine { leaves; _ } -> leaves
  | Workload.Topogen.Waxman { n; _ } -> n
  | Workload.Topogen.Isp { core; pops_per_core } -> core * pops_per_core
  | Workload.Topogen.Scale_free { n; _ } -> n

(* Per-family bound on the switch-to-switch degree of [sw]. *)
let degree_ok fam sw d =
  match fam with
  | Workload.Topogen.Linear _ -> d <= 2
  | Workload.Topogen.Ring _ -> d = 2
  | Workload.Topogen.Star n -> if sw = 0 then d = n else d = 1
  | Workload.Topogen.Grid _ -> d <= 4
  | Workload.Topogen.Fat_tree { k } -> d <= k
  | Workload.Topogen.Leaf_spine { spines; leaves } ->
    if sw < spines then d = leaves else d = spines
  | Workload.Topogen.Waxman _ -> d >= 1
  | Workload.Topogen.Isp { core; pops_per_core } ->
    if sw < core then d = 2 + pops_per_core else d = 1
  | Workload.Topogen.Scale_free { n = _; m } -> d >= m

let gen_family =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Workload.Topogen.Linear (1 + n)) (int_bound 6);
        map (fun n -> Workload.Topogen.Ring (3 + n)) (int_bound 5);
        map (fun n -> Workload.Topogen.Star (1 + n)) (int_bound 6);
        map2
          (fun r c -> Workload.Topogen.Grid { rows = 1 + r; cols = 1 + c })
          (int_bound 3) (int_bound 3);
        map (fun k -> Workload.Topogen.Fat_tree { k = 2 * (1 + k) }) (int_bound 2);
        map2
          (fun s l -> Workload.Topogen.Leaf_spine { spines = 1 + s; leaves = 1 + l })
          (int_bound 3) (int_bound 8);
        map
          (fun n -> Workload.Topogen.Waxman { n = 2 + n; alpha = 0.6; beta = 0.5 })
          (int_bound 10);
        map2
          (fun c pp -> Workload.Topogen.Isp { core = 3 + c; pops_per_core = 1 + pp })
          (int_bound 3) (int_bound 3);
        map2
          (fun extra m ->
            Workload.Topogen.Scale_free { n = m + 2 + extra; m = 1 + m })
          (int_bound 8) (int_bound 2);
      ])

let gen_world =
  QCheck2.Gen.(quad gen_family (int_bound 1000) (int_range 1 3) (int_bound 2))

let prop_topogen_invariants =
  QCheck2.Test.make ~count:60
    ~name:"every family: involutive ports, connected, bounded, replayable"
    ~print:(fun (fam, seed, stride, hps) ->
      Printf.sprintf "%s seed=%d stride=%d hps=%d" (family_name fam) seed stride hps)
    gen_world
    (fun (fam, seed, stride, hps) ->
      let params =
        { Workload.Topogen.default_params with host_stride = stride;
          hosts_per_switch = hps }
      in
      let build () = Workload.Topogen.build params (Support.Rng.create seed) fam in
      let topo = build () in
      let switches = Netsim.Topology.switches topo in
      let links = Netsim.Topology.links topo in
      (* Port maps involutive and collision-free. *)
      let involutive =
        List.for_all
          (fun (l : Netsim.Topology.link) ->
            Netsim.Topology.peer topo l.a = Some l.b
            && Netsim.Topology.peer topo l.b = Some l.a)
          links
      in
      let endpoints =
        List.concat_map (fun (l : Netsim.Topology.link) -> [ l.a; l.b ]) links
      in
      let collision_free =
        List.length (List.sort_uniq compare endpoints) = List.length endpoints
      in
      (* Connected over the switch graph. *)
      let connected =
        match switches with
        | [] -> false
        | first :: _ ->
          let dist, _ = Netsim.Topology.shortest_paths topo ~from_sw:first in
          List.for_all (fun sw -> Hashtbl.mem dist sw) switches
      in
      (* Every host attached; the population honours the stride. *)
      let hosts = Netsim.Topology.hosts topo in
      let attached =
        List.for_all
          (fun h ->
            match Netsim.Topology.host_attachment topo h with
            | Some { Netsim.Topology.node = Netsim.Topology.Switch _; _ } -> true
            | Some _ | None -> false)
          hosts
      in
      let sites = eligible_sites fam in
      let expected_hosts = hps * ((sites + stride - 1) / stride) in
      (* Degree and stratum bounds. *)
      let degree_bounded =
        List.for_all
          (fun sw ->
            degree_ok fam sw
              (List.length (Netsim.Topology.neighbor_switches topo sw)))
          switches
      in
      let stratum_ok =
        let no_hosts sw = Netsim.Topology.hosts_on_switch topo sw = [] in
        match fam with
        | Workload.Topogen.Leaf_spine { spines; _ } ->
          List.for_all no_hosts (List.filter (fun sw -> sw < spines) switches)
        | Workload.Topogen.Isp { core; _ } ->
          List.for_all no_hosts (List.filter (fun sw -> sw < core) switches)
        | Workload.Topogen.Star _ -> no_hosts 0
        | _ -> true
      in
      involutive && collision_free && connected && attached
      && List.length hosts = expected_hosts
      && degree_bounded && stratum_ok
      (* Same seed, identical topology. *)
      && fingerprint (build ()) = fingerprint topo)

let test_multi_domain_composition () =
  let families =
    [
      Workload.Topogen.Leaf_spine { spines = 2; leaves = 4 };
      Workload.Topogen.Scale_free { n = 6; m = 2 };
      Workload.Topogen.Ring 4;
    ]
  in
  let md =
    Workload.Topogen.multi_domain p (Support.Rng.create 9) ~peering:2 families
  in
  check Alcotest.int "switches across domains" 16
    (Workload.Topogen.switch_count md.md_topo);
  (* leaf-spine hosts on leaves only; the other domains host everywhere *)
  check Alcotest.int "hosts across domains" 14
    (Workload.Topogen.host_count md.md_topo);
  structural_invariants "multi-domain" md.md_topo;
  check Alcotest.int "peering links per border" 4 (List.length md.md_peerings);
  List.iter
    (fun (a, b) ->
      match
        ( Workload.Topogen.domain_of_switch md a,
          Workload.Topogen.domain_of_switch md b )
      with
      | Some da, Some db ->
        check Alcotest.int "peering spans adjacent domains" 1 (db - da)
      | _ -> Alcotest.fail "peering endpoint outside any domain")
    md.md_peerings;
  check Alcotest.bool "every switch owned by a domain" true
    (List.for_all
       (fun sw -> Workload.Topogen.domain_of_switch md sw <> None)
       (Netsim.Topology.switches md.md_topo));
  check Alcotest.bool "unknown switch unowned" true
    (Workload.Topogen.domain_of_switch md 99 = None);
  let md2 =
    Workload.Topogen.multi_domain p (Support.Rng.create 9) ~peering:2 families
  in
  check Alcotest.bool "same seed, same composition" true
    (fingerprint md2.md_topo = fingerprint md.md_topo
    && md2.md_peerings = md.md_peerings)

let test_host_stride () =
  let p2 = { p with Workload.Topogen.hosts_per_switch = 2; host_stride = 3 } in
  let topo = Workload.Topogen.leaf_spine p2 ~spines:2 ~leaves:10 in
  (* Sites 0, 3, 6 and 9 of the ten leaves carry hosts. *)
  check Alcotest.int "strided host population" 8 (Workload.Topogen.host_count topo);
  (* A skipped leaf keeps its structural ports above the host range, so
     port numbering is identical at every stride. *)
  let skipped_leaf = 3 in
  check Alcotest.int "no hosts on a skipped leaf" 0
    (List.length (Netsim.Topology.hosts_on_switch topo skipped_leaf));
  check (Alcotest.list Alcotest.int) "structural ports preserved" [ 2; 3 ]
    (Netsim.Topology.switch_ports topo skipped_leaf);
  check (Alcotest.list Alcotest.int) "populated leaf uses the host ports"
    [ 0; 1; 2; 3 ]
    (Netsim.Topology.switch_ports topo 2)

let raises_invalid name f =
  match f () with
  | () -> Alcotest.failf "%s: expected Invalid_argument" name
  | exception Invalid_argument _ -> ()

let test_new_generator_validation () =
  let rng () = Support.Rng.create 1 in
  raises_invalid "leaf_spine no spines" (fun () ->
      ignore (Workload.Topogen.leaf_spine p ~spines:0 ~leaves:4));
  raises_invalid "leaf_spine no leaves" (fun () ->
      ignore (Workload.Topogen.leaf_spine p ~spines:2 ~leaves:0));
  raises_invalid "scale_free m zero" (fun () ->
      ignore (Workload.Topogen.scale_free p (rng ()) ~n:5 ~m:0));
  raises_invalid "scale_free n too small" (fun () ->
      ignore (Workload.Topogen.scale_free p (rng ()) ~n:2 ~m:2));
  raises_invalid "waxman alpha zero" (fun () ->
      ignore (Workload.Topogen.waxman p (rng ()) ~n:5 ~alpha:0.0 ~beta:0.5));
  raises_invalid "waxman alpha above one" (fun () ->
      ignore (Workload.Topogen.waxman p (rng ()) ~n:5 ~alpha:1.5 ~beta:0.5));
  raises_invalid "waxman beta zero" (fun () ->
      ignore (Workload.Topogen.waxman p (rng ()) ~n:5 ~alpha:0.5 ~beta:0.0));
  raises_invalid "isp core too small" (fun () ->
      ignore (Workload.Topogen.isp p ~core:2 ~pops_per_core:1));
  raises_invalid "negative hosts_per_switch" (fun () ->
      ignore
        (Workload.Topogen.linear { p with Workload.Topogen.hosts_per_switch = -1 } 3));
  raises_invalid "zero host_stride" (fun () ->
      ignore (Workload.Topogen.linear { p with Workload.Topogen.host_stride = 0 } 3));
  raises_invalid "nan link_delay" (fun () ->
      ignore
        (Workload.Topogen.linear { p with Workload.Topogen.link_delay = Float.nan } 3));
  raises_invalid "empty multi-domain" (fun () ->
      ignore (Workload.Topogen.multi_domain p (rng ()) ~peering:1 []));
  raises_invalid "zero peering" (fun () ->
      ignore
        (Workload.Topogen.multi_domain p (rng ()) ~peering:0
           [ Workload.Topogen.Ring 3 ]))

(* ---- scenario builder ---- *)

let test_scenario_round_robin_clients () =
  let topo = Workload.Topogen.linear p 6 in
  let s = Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 3 } in
  List.iter
    (fun host ->
      let info = Option.get (Sdnctl.Addressing.host s.addressing ~host) in
      check Alcotest.int
        (Printf.sprintf "host %d client" host)
        (host mod 3) info.client)
    (Netsim.Topology.hosts topo)

let test_scenario_agents_registered () =
  let topo = Workload.Topogen.linear p 3 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  check Alcotest.int "one agent per host" 3 (List.length s.agents);
  (* every agent can be looked up *)
  List.iter
    (fun h -> ignore (Workload.Scenario.agent s ~host:h))
    (Netsim.Topology.hosts topo)

let test_scenario_determinism () =
  (* Two builds with the same seed answer a query identically. *)
  let build () =
    let topo = Workload.Topogen.linear p 4 in
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with seed = 7 }
  in
  let answer s =
    match
      Workload.Scenario.query_and_wait s ~host:0
        (Rvaas.Query.make Rvaas.Query.Isolation)
        ~timeout:1.0
    with
    | Some o ->
      let a = o.Rvaas.Client_agent.answer in
      ( List.map (fun (e : Rvaas.Query.endpoint_report) -> (e.sw, e.port)) a.endpoints,
        a.total_auth_requests,
        o.answered_at )
    | None -> ([], -1, 0.0)
  in
  let a1 = answer (build ()) and a2 = answer (build ()) in
  check Alcotest.bool "identical answers for identical seeds" true (a1 = a2)

let test_scenario_policy_covers_whitelist () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 2; whitelist = [ (1, 0) ] }
  in
  let policy = Workload.Scenario.policy_for s ~client:0 in
  (* client 1 may reach client 0, so client 1's points are allowed peers. *)
  let c1_points =
    Sdnctl.Addressing.access_points s.addressing (Netsim.Net.topology s.net) ~client:1
  in
  List.iter
    (fun pt ->
      check Alcotest.bool "whitelisted peer point allowed" true
        (List.mem pt policy.Rvaas.Detector.allowed_peer_points))
    c1_points

let test_scenario_snapshot_complete_after_build () =
  let topo = Workload.Topogen.grid p ~rows:2 ~cols:2 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  check Alcotest.int "snapshot converged" 0
    (Rvaas.Snapshot.divergence
       (Rvaas.Monitor.snapshot s.monitor)
       ~actual:(Workload.Scenario.actual_flows s))

let test_scenario_range_mode () =
  (* Range mode: every topology host gateways a block of addresses,
     carried end-to-end as one prefix. *)
  let topo = Workload.Topogen.leaf_spine p ~spines:2 ~leaves:3 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with
        clients = 1; seed = 17; range_hosts = 500 }
  in
  check Alcotest.int "addresses cover the ranges" (3 * 500)
    (Workload.Scenario.address_count s);
  List.iter
    (fun host ->
      check Alcotest.bool "every gateway exposes a range scope" true
        (Workload.Scenario.range_scope s ~host <> None))
    (Netsim.Topology.hosts topo);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  check Alcotest.int "snapshot converged in range mode" 0
    (Rvaas.Snapshot.divergence
       (Rvaas.Monitor.snapshot s.monitor)
       ~actual:(Workload.Scenario.actual_flows s));
  (* A query scoped to a whole range answers and verifies. *)
  let scope = Workload.Scenario.range_scope s ~host:1 in
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make ?scope Rvaas.Query.Reachable_endpoints)
      ~timeout:2.0
  with
  | Some o ->
    check Alcotest.bool "signature verifies" true o.Rvaas.Client_agent.signature_ok;
    check Alcotest.bool "the range is reachable" true
      (o.Rvaas.Client_agent.answer.Rvaas.Query.endpoints <> [])
  | None -> Alcotest.fail "no answer to the range-scoped query"

(* ---- churn campaigns ---- *)

let churn_world ?(engine = `Sweep) seed =
  let topo = Workload.Topogen.leaf_spine p ~spines:2 ~leaves:3 in
  Workload.Scenario.build
    { (Workload.Scenario.default_spec topo) with
      clients = 1; seed; engine; polling = Rvaas.Monitor.Periodic 0.05 }

let class_counts (c : Workload.Churn.campaign) =
  List.fold_left
    (fun (u, f, a, s) (_, e) ->
      match e with
      | Workload.Churn.Upgrade _ -> (u + 1, f, a, s)
      | Workload.Churn.Flap _ -> (u, f + 1, a, s)
      | Workload.Churn.Attack_burst _ -> (u, f, a + 1, s)
      | Workload.Churn.Storm _ -> (u, f, a, s + 1))
    (0, 0, 0, 0) c.Workload.Churn.c_events

let test_churn_plan_replayable () =
  let s = churn_world 23 in
  let plan seed =
    Workload.Churn.plan s Workload.Churn.default_profile ~seed ~start:1.0
      ~duration:600.0
  in
  let c1 = plan 5 and c2 = plan 5 in
  check Alcotest.bool "same seed, same program" true
    (c1.Workload.Churn.c_events = c2.Workload.Churn.c_events);
  check Alcotest.bool "events drawn at the profile rates" true
    (Workload.Churn.event_count c1 > 20);
  let times = List.map fst c1.Workload.Churn.c_events in
  check Alcotest.bool "ascending schedule" true (List.sort compare times = times);
  check Alcotest.bool "within the window" true
    (List.for_all (fun t -> t >= 1.0 && t < 601.0) times);
  let c3 = plan 6 in
  check Alcotest.bool "different seed, different program" true
    (c1.Workload.Churn.c_events <> c3.Workload.Churn.c_events)

let test_churn_describe () =
  check Alcotest.string "upgrade" "upgrade s3 (2.0s outage)"
    (Workload.Churn.describe (Workload.Churn.Upgrade { sw = 3; outage = 2.0 }));
  check Alcotest.string "flap" "flap s1:4 (1.5s down)"
    (Workload.Churn.describe (Workload.Churn.Flap { sw = 1; port = 4; down = 1.5 }));
  check Alcotest.string "attack" "attack blackhole(h2) (3.0s dwell)"
    (Workload.Churn.describe
       (Workload.Churn.Attack_burst
          { attack = Sdnctl.Attack.Blackhole { victim_host = 2 }; dwell = 3.0 }));
  check Alcotest.string "storm" "storm h7 (20 queries over 2.0s)"
    (Workload.Churn.describe
       (Workload.Churn.Storm { host = 7; queries = 20; spread = 2.0 }))

let test_churn_execute_reports () =
  let s = churn_world ~engine:`Compiled 31 in
  let profile =
    { Workload.Churn.upgrades_per_min = 6.0; flaps_per_min = 6.0;
      attacks_per_min = 6.0; storms_per_min = 6.0; upgrade_outage = 0.3;
      flap_down = 0.3; attack_dwell = 0.4; storm_queries = 5;
      storm_spread = 0.5 }
  in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let campaign = Workload.Churn.plan s profile ~seed:3 ~start:(t0 +. 0.5) ~duration:60.0 in
  let u, f, a, st = class_counts campaign in
  check Alcotest.bool "campaign has a spread of events" true (u + f + a + st > 5);
  let report = Workload.Churn.execute s campaign in
  check Alcotest.int "upgrades executed" u report.Workload.Churn.upgrades;
  check Alcotest.int "flaps executed" f report.Workload.Churn.flaps;
  check Alcotest.int "attacks executed" a report.Workload.Churn.attacks;
  check Alcotest.int "storms executed" st report.Workload.Churn.storms;
  check Alcotest.int "storm queries all sent" (st * 5)
    report.Workload.Churn.storm_queries_sent;
  check Alcotest.bool "storm queries answered" true
    (st = 0 || report.Workload.Churn.storm_answers > 0);
  (* After the campaign settles, every transient is retracted or
     restored and the believed view matches the wire again. *)
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  check Alcotest.int "snapshot reconverged" 0
    (Rvaas.Snapshot.divergence
       (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s))
       ~actual:(Workload.Scenario.actual_flows s))

(* ---- traffic generation ---- *)

let test_traffic_delivery () =
  let topo = Workload.Topogen.linear p 3 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
  in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let flow =
    Workload.Trafficgen.make_flow s ~src_host:0 ~dst_host:2 ~rate_pps:100.0
      ~size_bytes:200 ~start:(t0 +. 0.01) ~duration:0.5
  in
  match Workload.Trafficgen.run s [ flow ] ~until:(t0 +. 1.0) with
  | [ r ] ->
    check Alcotest.int "all sent" 50 r.sent;
    check Alcotest.int "all delivered" 50 r.delivered;
    check Alcotest.bool "goodput ≈ 160 kbps" true
      (abs_float (Workload.Trafficgen.goodput_kbps r -. 160.0) < 5.0)
  | _ -> Alcotest.fail "expected one report"

let test_traffic_two_flows_distinguished () =
  let topo = Workload.Topogen.linear p 3 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
  in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let mk src dst rate =
    Workload.Trafficgen.make_flow s ~src_host:src ~dst_host:dst ~rate_pps:rate
      ~size_bytes:100 ~start:(t0 +. 0.01) ~duration:0.2
  in
  match Workload.Trafficgen.run s [ mk 0 2 100.0; mk 1 2 50.0 ] ~until:(t0 +. 1.0) with
  | [ a; b ] ->
    check Alcotest.int "flow a" 20 a.delivered;
    check Alcotest.int "flow b" 10 b.delivered
  | _ -> Alcotest.fail "expected two reports"

let test_traffic_meter_squeeze_observable () =
  (* The meter-squeeze attack must reduce data-plane goodput, matching
     what the Fairness configuration query reports. *)
  let run_with ~attack =
    let topo = Workload.Topogen.linear p 3 in
    let s =
      Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
    in
    if attack then begin
      Sdnctl.Attack.launch s.net s.addressing
        ~conn:(Sdnctl.Provider.conn s.provider)
        (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 50 });
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1)
    end;
    let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
    let flow =
      (* 400 pps x 500 B = 1600 kbps offered. *)
      Workload.Trafficgen.make_flow s ~src_host:0 ~dst_host:2 ~rate_pps:400.0
        ~size_bytes:500 ~start:(t0 +. 0.01) ~duration:1.0
    in
    match Workload.Trafficgen.run s [ flow ] ~until:(t0 +. 2.0) with
    | [ r ] -> Workload.Trafficgen.goodput_kbps r
    | _ -> Alcotest.fail "expected one report"
  in
  let free = run_with ~attack:false and squeezed = run_with ~attack:true in
  check Alcotest.bool "unmetered flow runs at line rate" true (free > 1500.0);
  (* 50 kbps meter + burst allowance: well under a quarter of the offer. *)
  check Alcotest.bool "squeezed flow throttled" true (squeezed < 400.0)

let () =
  Alcotest.run "workload"
    [
      ( "topogen",
        [
          Alcotest.test_case "structural invariants" `Quick test_generators_structure;
          Alcotest.test_case "counts" `Quick test_generator_counts;
          Alcotest.test_case "hosts per switch" `Quick test_generator_hosts_per_switch;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "fat-tree diameter" `Quick test_fat_tree_diameter;
          Alcotest.test_case "multi-domain composition" `Quick
            test_multi_domain_composition;
          Alcotest.test_case "host stride" `Quick test_host_stride;
          Alcotest.test_case "new generator validation" `Quick
            test_new_generator_validation;
          QCheck_alcotest.to_alcotest prop_topogen_invariants;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "round-robin clients" `Quick test_scenario_round_robin_clients;
          Alcotest.test_case "agents registered" `Quick test_scenario_agents_registered;
          Alcotest.test_case "determinism" `Quick test_scenario_determinism;
          Alcotest.test_case "whitelist in policy" `Quick test_scenario_policy_covers_whitelist;
          Alcotest.test_case "snapshot complete" `Quick
            test_scenario_snapshot_complete_after_build;
          Alcotest.test_case "range mode" `Quick test_scenario_range_mode;
        ] );
      ( "churn",
        [
          Alcotest.test_case "plan replayable" `Quick test_churn_plan_replayable;
          Alcotest.test_case "describe" `Quick test_churn_describe;
          Alcotest.test_case "execute reports" `Quick test_churn_execute_reports;
        ] );
      ( "trafficgen",
        [
          Alcotest.test_case "delivery at rate" `Quick test_traffic_delivery;
          Alcotest.test_case "flows distinguished" `Quick
            test_traffic_two_flows_distinguished;
          Alcotest.test_case "meter squeeze observable" `Quick
            test_traffic_meter_squeeze_observable;
        ] );
    ]
